//! A hand-rolled *item-level* Rust parser on top of [`crate::lexer`].
//!
//! The workspace builds offline, so `syn` is unavailable; the analyzer
//! parses just enough structure for whole-workspace reasoning:
//!
//! - items: `fn` / `impl` / `mod` (inline and file) / `use` (with
//!   groups, aliases and globs) / `static` (tracking `mut`);
//! - function bodies as *fact bags*: path references and calls, macro
//!   invocations, method calls with best-effort receivers, `as` casts
//!   (classifying "cast of computed arithmetic"), raw `+`/`*`
//!   arithmetic, and string literals (for format-string inspection);
//! - `#[test]` / `#[cfg(test)]` propagation so downstream rules can
//!   exempt test code.
//!
//! It is **not** a Rust grammar. Anything it does not understand it
//! skips; on arbitrary input it must never panic (a property test
//! enforces this), only degrade to fewer facts.

use crate::lexer::{Token, TokenKind};

/// Parse result for one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub items: Vec<Item>,
}

#[derive(Debug)]
pub enum Item {
    Fn(FnItem),
    Mod(ModItem),
    Use(UseItem),
    Impl(ImplItem),
    Static(StaticItem),
}

/// `mod name;` (file module, `inline == None`) or `mod name { … }`.
#[derive(Debug)]
pub struct ModItem {
    pub name: String,
    pub line: u32,
    pub in_test: bool,
    pub inline: Option<Vec<Item>>,
}

/// One `use …;` item, flattened to leaf bindings.
#[derive(Debug)]
pub struct UseItem {
    pub bindings: Vec<UseBinding>,
    pub line: u32,
}

/// A single imported name: `use a::b::c as d` ⇒ path `[a,b,c]`,
/// alias `d`. Globs (`use a::*`) set `glob` with the module as path.
#[derive(Debug, Clone)]
pub struct UseBinding {
    pub path: Vec<String>,
    pub alias: String,
    pub glob: bool,
}

/// `impl Type { … }` / `impl Trait for Type { … }`.
#[derive(Debug)]
pub struct ImplItem {
    /// Last plain segment of the implemented type's path.
    pub type_name: String,
    pub line: u32,
    pub in_test: bool,
    pub fns: Vec<FnItem>,
}

#[derive(Debug)]
pub struct StaticItem {
    pub name: String,
    pub mutable: bool,
    pub line: u32,
}

#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` / under `#[test]` (own or enclosing item).
    pub in_test: bool,
    pub line: u32,
    pub end_line: u32,
    pub body: BodyFacts,
}

/// Everything the analysis passes want to know about one fn body.
#[derive(Debug, Default)]
pub struct BodyFacts {
    pub paths: Vec<PathRef>,
    pub method_calls: Vec<MethodCall>,
    pub casts: Vec<Cast>,
    pub arith: Vec<ArithOp>,
    pub strings: Vec<StrLit>,
    /// Every identifier mentioned (for `static mut` usage checks).
    pub idents: std::collections::BTreeSet<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// A path mentioned without parens (type position, argument, …).
    Ref,
    /// `path(…)`.
    Call,
    /// `path!(…)` / `path![…]` / `path!{…}`.
    Macro,
}

#[derive(Debug, Clone)]
pub struct PathRef {
    pub segments: Vec<String>,
    pub kind: PathKind,
    pub line: u32,
    pub col: u32,
}

impl PathRef {
    pub fn last(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }

    /// `a::b::c` for messages.
    pub fn dotted(&self) -> String {
        self.segments.join("::")
    }
}

#[derive(Debug, Clone)]
pub struct MethodCall {
    pub name: String,
    /// The identifier directly before the dot, when there is one
    /// (`buf.retain(…)` ⇒ `buf`); chained calls have none.
    pub receiver: Option<String>,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone)]
pub struct Cast {
    /// Target type's last path segment (`u8`, `usize`, `ptr` for raw
    /// pointer casts).
    pub target: String,
    /// True when the cast source is a parenthesized expression that
    /// computes arithmetic (`(a + b) as u16`, `(x >> 3) as u32`) with
    /// no dominating comparison and no modulo bound that provably fits
    /// the target.
    pub arith_source: bool,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone)]
pub struct ArithOp {
    /// `'+'` or `'*'` (compound assignments report the base op).
    pub op: char,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone)]
pub struct StrLit {
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// Parse one file's token stream.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut p = Parser { t: tokens, i: 0 };
    ParsedFile {
        items: p.items(false, true),
    }
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn kind(&self, off: usize) -> Option<&TokenKind> {
        self.t.get(self.i + off).map(|t| &t.kind)
    }

    fn ident(&self, off: usize) -> Option<&str> {
        self.kind(off).and_then(|k| k.ident())
    }

    fn punct(&self, off: usize) -> Option<char> {
        match self.kind(off) {
            Some(TokenKind::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn pos(&self) -> (u32, u32) {
        self.t
            .get(self.i)
            .map(|t| (t.line, t.col))
            .unwrap_or((u32::MAX, u32::MAX))
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Parse items until EOF (`top == true`) or a closing `}`.
    fn items(&mut self, in_test: bool, top: bool) -> Vec<Item> {
        let mut out = Vec::new();
        loop {
            // Attributes: collect, noting `test` mentions.
            let mut attr_test = false;
            loop {
                match self.kind(0) {
                    None => return out,
                    Some(TokenKind::Punct('}')) if !top => return out,
                    Some(TokenKind::Punct('#')) => {
                        self.bump();
                        if self.punct(0) == Some('!') {
                            self.bump();
                        }
                        if self.punct(0) == Some('[') {
                            attr_test |= self.attr_mentions_test();
                        }
                    }
                    _ => break,
                }
            }
            let item_test = in_test || attr_test;

            // Visibility.
            let mut is_pub = false;
            if self.ident(0) == Some("pub") {
                is_pub = true;
                self.bump();
                if self.punct(0) == Some('(') {
                    self.skip_group('(', ')');
                }
            }
            // Leading modifiers (`const fn`, `unsafe fn`, `extern "C" fn`,
            // `async fn`). A bare `const NAME` is a const item.
            loop {
                match self.ident(0) {
                    Some("unsafe") | Some("async") => self.bump(),
                    Some("extern") => {
                        self.bump();
                        if matches!(self.kind(0), Some(TokenKind::Str(_))) {
                            self.bump();
                        }
                        // `extern crate x;` / extern blocks fall through to
                        // the dispatch below.
                    }
                    Some("const") if self.ident(1) == Some("fn") => self.bump(),
                    _ => break,
                }
            }

            match self.ident(0) {
                Some("fn") => {
                    let f = self.fn_item(is_pub, item_test);
                    out.push(Item::Fn(f));
                }
                Some("mod") => {
                    let (line, _) = self.pos();
                    self.bump();
                    let name = self.take_ident().unwrap_or_default();
                    match self.punct(0) {
                        Some('{') => {
                            self.bump();
                            let inner = self.items(item_test, false);
                            if self.punct(0) == Some('}') {
                                self.bump();
                            }
                            out.push(Item::Mod(ModItem {
                                name,
                                line,
                                in_test: item_test,
                                inline: Some(inner),
                            }));
                        }
                        _ => {
                            self.skip_to_semi();
                            out.push(Item::Mod(ModItem {
                                name,
                                line,
                                in_test: item_test,
                                inline: None,
                            }));
                        }
                    }
                }
                Some("use") => {
                    let (line, _) = self.pos();
                    self.bump();
                    let mut bindings = Vec::new();
                    self.use_tree(Vec::new(), &mut bindings);
                    if self.punct(0) == Some(';') {
                        self.bump();
                    }
                    out.push(Item::Use(UseItem { bindings, line }));
                }
                Some("static") => {
                    let (line, _) = self.pos();
                    self.bump();
                    let mutable = if self.ident(0) == Some("mut") {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    let name = self.take_ident().unwrap_or_default();
                    self.skip_to_semi();
                    out.push(Item::Static(StaticItem {
                        name,
                        mutable,
                        line,
                    }));
                }
                Some("impl") => {
                    if let Some(item) = self.impl_item(item_test) {
                        out.push(Item::Impl(item));
                    }
                }
                Some("const") => {
                    // const item (const fn was consumed as a modifier).
                    self.bump();
                    self.skip_to_semi();
                }
                Some("struct") | Some("enum") | Some("union") | Some("trait") | Some("type")
                | Some("macro_rules") | Some("macro") => {
                    self.skip_item();
                }
                Some(_) => self.bump(),
                None => match self.kind(0) {
                    None => return out,
                    Some(TokenKind::Punct('}')) if !top => return out,
                    _ => self.bump(),
                },
            }
        }
    }

    /// At `[`: consume the attribute, reporting whether it mentions the
    /// identifier `test` (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`).
    fn attr_mentions_test(&mut self) -> bool {
        let mut depth = 0i64;
        let mut mentions = false;
        while let Some(k) = self.kind(0) {
            match k {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return mentions;
                    }
                }
                TokenKind::Ident(s) if s == "test" => mentions = true,
                _ => {}
            }
            self.bump();
        }
        mentions
    }

    fn take_ident(&mut self) -> Option<String> {
        let s = self.ident(0)?.to_string();
        self.bump();
        Some(s)
    }

    /// Skip a balanced punct group assuming the cursor is on `open`;
    /// non-punct tokens inside are fine.
    fn skip_group(&mut self, open: char, close: char) {
        let mut depth = 0i64;
        while self.i < self.t.len() {
            match self.punct(0) {
                Some(c) if c == open => {
                    depth += 1;
                    self.bump();
                }
                Some(c) if c == close => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                _ => self.bump(),
            }
        }
    }

    /// Skip to (and past) the next `;` at brace/paren/bracket depth 0.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i64;
        while self.i < self.t.len() {
            match self.punct(0) {
                Some('{') | Some('(') | Some('[') => depth += 1,
                Some('}') | Some(')') | Some(']') => {
                    if depth == 0 {
                        return; // missing `;` before a close — recover
                    }
                    depth -= 1;
                }
                Some(';') if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip a struct/enum/trait/type/macro item: to a top-level `;` or
    /// through a top-level `{…}` body.
    fn skip_item(&mut self) {
        self.bump(); // the keyword
        let mut depth = 0i64;
        while self.i < self.t.len() {
            match self.punct(0) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    self.skip_group('{', '}');
                    return;
                }
                Some(';') if depth == 0 => {
                    self.bump();
                    return;
                }
                Some('}') if depth == 0 => return, // enclosing close — recover
                _ => {}
            }
            self.bump();
        }
    }

    /// `use` tree after the keyword: `a::b::{c, d as e, f::*}`.
    fn use_tree(&mut self, prefix: Vec<String>, out: &mut Vec<UseBinding>) {
        let mut path = prefix;
        loop {
            match self.kind(0) {
                Some(TokenKind::Ident(s)) => {
                    let seg = s.clone();
                    self.bump();
                    if self.ident(0) == Some("as") {
                        self.bump();
                        let alias = self.take_ident().unwrap_or_else(|| seg.clone());
                        let mut p = path.clone();
                        p.push(seg);
                        out.push(UseBinding {
                            path: p,
                            alias,
                            glob: false,
                        });
                        return;
                    }
                    if self.punct(0) == Some(':') && self.punct(1) == Some(':') {
                        self.bump();
                        self.bump();
                        path.push(seg);
                        continue;
                    }
                    // Terminal segment. `self` in a group imports the
                    // parent module under its own name.
                    if seg == "self" {
                        if let Some(alias) = path.last().cloned() {
                            out.push(UseBinding {
                                path: path.clone(),
                                alias,
                                glob: false,
                            });
                        }
                    } else {
                        let mut p = path.clone();
                        p.push(seg.clone());
                        out.push(UseBinding {
                            path: p,
                            alias: seg,
                            glob: false,
                        });
                    }
                    return;
                }
                Some(TokenKind::Punct('*')) => {
                    self.bump();
                    out.push(UseBinding {
                        path: path.clone(),
                        alias: String::new(),
                        glob: true,
                    });
                    return;
                }
                Some(TokenKind::Punct('{')) => {
                    self.bump();
                    loop {
                        match self.kind(0) {
                            Some(TokenKind::Punct('}')) => {
                                self.bump();
                                return;
                            }
                            Some(TokenKind::Punct(',')) => self.bump(),
                            None => return,
                            _ => {
                                let before = self.i;
                                self.use_tree(path.clone(), out);
                                if self.i == before {
                                    self.bump(); // malformed — force progress
                                }
                            }
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// At `impl`: parse the header and the fns inside the body.
    fn impl_item(&mut self, in_test: bool) -> Option<ImplItem> {
        let (line, _) = self.pos();
        self.bump(); // impl
        if self.punct(0) == Some('<') {
            self.skip_angles();
        }
        let first = self.type_path()?;
        let type_path = if self.ident(0) == Some("for") {
            self.bump();
            self.type_path()?
        } else {
            first
        };
        // Skip where-clauses etc. up to the body.
        while self.i < self.t.len() && self.punct(0) != Some('{') {
            // A `;` here means `impl Trait for Type;` — no body.
            if self.punct(0) == Some(';') {
                self.bump();
                return None;
            }
            if self.punct(0) == Some('<') {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
        if self.punct(0) != Some('{') {
            return None;
        }
        self.bump();
        let mut fns = Vec::new();
        for item in self.items(in_test, false) {
            if let Item::Fn(f) = item {
                fns.push(f);
            }
        }
        if self.punct(0) == Some('}') {
            self.bump();
        }
        Some(ImplItem {
            type_name: type_path,
            line,
            in_test,
            fns,
        })
    }

    /// A type path's last plain segment (`session::Depot` ⇒ `Depot`,
    /// `Foo<'a, T>` ⇒ `Foo`, `&mut Bar` ⇒ `Bar`).
    fn type_path(&mut self) -> Option<String> {
        // Leading `&`, `mut`, `dyn`.
        loop {
            match (self.punct(0), self.ident(0)) {
                (Some('&'), _) => self.bump(),
                (_, Some("mut")) | (_, Some("dyn")) => self.bump(),
                (Some('\''), _) => self.bump(),
                _ => break,
            }
        }
        let mut last = None;
        while let Some(s) = self.ident(0) {
            last = Some(s.to_string());
            self.bump();
            if self.punct(0) == Some('<') {
                self.skip_angles();
            }
            if self.punct(0) == Some(':') && self.punct(1) == Some(':') {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        last
    }

    /// At `<`: skip to the matching `>` (each `>` of a `>>` is its own
    /// token, so plain counting works).
    fn skip_angles(&mut self) {
        let mut depth = 0i64;
        while self.i < self.t.len() {
            match self.punct(0) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                // A body brace or semicolon at this point means the `<`
                // was a comparison after all; bail out.
                Some('{') | Some(';') => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// At `fn`: parse the signature and collect body facts.
    fn fn_item(&mut self, is_pub: bool, in_test: bool) -> FnItem {
        let (line, _) = self.pos();
        self.bump(); // fn
        let name = self.take_ident().unwrap_or_default();
        if self.punct(0) == Some('<') {
            self.skip_angles();
        }
        if self.punct(0) == Some('(') {
            self.skip_group('(', ')');
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        while self.i < self.t.len() {
            match self.punct(0) {
                Some('{') => break,
                Some(';') => {
                    self.bump();
                    return FnItem {
                        name,
                        is_pub,
                        in_test,
                        line,
                        end_line: line,
                        body: BodyFacts::default(),
                    };
                }
                Some('<') => self.skip_angles(),
                _ => self.bump(),
            }
        }
        // Body: find the matching close brace, scan the inside.
        let start = self.i;
        let mut depth = 0i64;
        while self.i < self.t.len() {
            match self.punct(0) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            self.bump();
        }
        let end = self.i.min(self.t.len());
        let end_line = self.t.get(end).or(self.t.last()).map_or(line, |t| t.line);
        if self.punct(0) == Some('}') {
            self.bump();
        }
        let body_tokens = &self.t[(start + 1).min(end)..end];
        FnItem {
            name,
            is_pub,
            in_test,
            line,
            end_line,
            body: scan_body(body_tokens),
        }
    }
}

/// Visit every fn in an item tree: free fns, impl methods, and fns
/// inside inline modules, in source order.
pub fn for_each_fn<'a>(items: &'a [Item], visit: &mut impl FnMut(&'a FnItem)) {
    for item in items {
        match item {
            Item::Fn(f) => visit(f),
            Item::Impl(im) => {
                for f in &im.fns {
                    visit(f);
                }
            }
            Item::Mod(m) => {
                if let Some(inner) = &m.inline {
                    for_each_fn(inner, visit);
                }
            }
            _ => {}
        }
    }
}

/// Integer targets the narrowing-cast rule cares about, with their max
/// values (for the `(x % k) as T` exemption).
pub fn narrow_target_max(target: &str) -> Option<u64> {
    Some(match target {
        "u8" => u8::MAX as u64,
        "u16" => u16::MAX as u64,
        "u32" => u32::MAX as u64,
        "i8" => i8::MAX as u64,
        "i16" => i16::MAX as u64,
        "i32" => i32::MAX as u64,
        _ => return None,
    })
}

/// Extract the body fact bag from a fn body's token slice.
fn scan_body(t: &[Token]) -> BodyFacts {
    let mut facts = BodyFacts::default();
    let mut i = 0usize;
    while i < t.len() {
        match &t[i].kind {
            TokenKind::Str(s) => {
                facts.strings.push(StrLit {
                    text: s.clone(),
                    line: t[i].line,
                    col: t[i].col,
                });
                i += 1;
            }
            TokenKind::Ident(s) if s == "as" => {
                scan_cast(t, i, &mut facts);
                i += 1;
            }
            TokenKind::Ident(_) => {
                i = scan_path(t, i, &mut facts);
            }
            TokenKind::Punct(op @ ('+' | '*')) => {
                if is_binary_arith(t, i, *op) {
                    facts.arith.push(ArithOp {
                        op: *op,
                        line: t[i].line,
                        col: t[i].col,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    facts
}

/// At an identifier: collect the maximal `a::b::c` path (skipping
/// turbofish), classify it (ref / call / macro / method call), record
/// it, and return the index just past it.
fn scan_path(t: &[Token], start: usize, facts: &mut BodyFacts) -> usize {
    let mut segments = Vec::new();
    let mut i = start;
    while let Some(TokenKind::Ident(s)) = t.get(i).map(|x| &x.kind) {
        segments.push(s.clone());
        facts.idents.insert(s.clone());
        i += 1;
        // `::` continuation, possibly with turbofish in between.
        if matches!(t.get(i).map(|x| &x.kind), Some(TokenKind::Punct(':')))
            && matches!(t.get(i + 1).map(|x| &x.kind), Some(TokenKind::Punct(':')))
        {
            let mut j = i + 2;
            if matches!(t.get(j).map(|x| &x.kind), Some(TokenKind::Punct('<'))) {
                // Skip `::<…>`; may be followed by `(…)` or `::seg`.
                let mut depth = 0i64;
                while j < t.len() {
                    match &t[j].kind {
                        TokenKind::Punct('<') => depth += 1,
                        TokenKind::Punct('>') => {
                            depth -= 1;
                            if depth <= 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if matches!(t.get(j).map(|x| &x.kind), Some(TokenKind::Punct(':')))
                    && matches!(t.get(j + 1).map(|x| &x.kind), Some(TokenKind::Punct(':')))
                {
                    i = j; // another `::segment` follows the turbofish
                } else {
                    i = j; // call parens (or nothing) follow
                    break;
                }
            }
            if matches!(t.get(i + 2).map(|x| &x.kind), Some(TokenKind::Ident(_))) {
                i += 2;
                continue;
            }
        }
        break;
    }

    let (line, col) = (t[start].line, t[start].col);
    let after = t.get(i).map(|x| &x.kind);
    let prev_dot = start >= 1 && matches!(t[start - 1].kind, TokenKind::Punct('.'));
    if prev_dot && segments.len() == 1 {
        if matches!(after, Some(TokenKind::Punct('('))) {
            let receiver = (start >= 2)
                .then(|| t[start - 2].kind.ident().map(String::from))
                .flatten();
            facts.method_calls.push(MethodCall {
                name: segments.remove(0),
                receiver,
                line,
                col,
            });
        }
        return i;
    }
    let kind = match after {
        Some(TokenKind::Punct('!')) => PathKind::Macro,
        Some(TokenKind::Punct('(')) => PathKind::Call,
        _ => PathKind::Ref,
    };
    facts.paths.push(PathRef {
        segments,
        kind,
        line,
        col,
    });
    i
}

/// At the `as` keyword: record the cast with its target and whether the
/// source is computed arithmetic.
fn scan_cast(t: &[Token], as_pos: usize, facts: &mut BodyFacts) {
    // Target type: `*const T`/`*mut T` ⇒ "ptr"; otherwise the next
    // identifier (skipping nothing — a plain path's first segment is
    // enough to recognize the primitive names the rules care about,
    // and for `std::os::raw::c_int` the narrow-target check fails
    // safely on the first segment).
    let target = match t.get(as_pos + 1).map(|x| &x.kind) {
        Some(TokenKind::Punct('*')) => "ptr".to_string(),
        Some(TokenKind::Ident(s)) if s == "dyn" => return,
        Some(TokenKind::Ident(s)) => s.clone(),
        _ => return,
    };
    let arith_source = cast_source_is_arith(t, as_pos, &target);
    facts.casts.push(Cast {
        target,
        arith_source,
        line: t[as_pos].line,
        col: t[as_pos].col,
    });
}

/// True when the token directly before `as` closes a *grouping* paren
/// whose top level computes arithmetic — and the result is not provably
/// bounded below the target's max by a final `% <literal>`.
fn cast_source_is_arith(t: &[Token], as_pos: usize, target: &str) -> bool {
    if as_pos == 0 || !matches!(t[as_pos - 1].kind, TokenKind::Punct(')')) {
        return false;
    }
    // Find the matching open paren.
    let mut depth = 0i64;
    let mut open = None;
    for j in (0..as_pos).rev() {
        match t[j].kind {
            TokenKind::Punct(')') => depth += 1,
            TokenKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    open = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(open) = open else { return false };
    // A call/turbofish/tuple-struct paren is a value, not a group.
    if open > 0
        && matches!(
            t[open - 1].kind,
            TokenKind::Ident(_) | TokenKind::Punct('>') | TokenKind::Punct(']')
        )
    {
        return false;
    }
    let inner = &t[open + 1..as_pos - 1];

    // Walk the group's top level.
    let mut d = 0i64;
    let mut has_arith = false;
    let mut has_cmp = false;
    let mut last_mod = None; // index of the last top-level `%`
    let mut k = 0usize;
    while k < inner.len() {
        match &inner[k].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => d += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => d -= 1,
            TokenKind::EqEq | TokenKind::NotEq if d == 0 => has_cmp = true,
            TokenKind::Punct(c @ ('<' | '>')) if d == 0 => {
                // `<<`/`>>` are shifts (arithmetic); a single one is a
                // comparison (bool result — a safe cast source).
                if matches!(inner.get(k + 1).map(|x| &x.kind), Some(TokenKind::Punct(n)) if n == c)
                {
                    has_arith = true;
                    k += 1;
                } else {
                    has_cmp = true;
                }
            }
            TokenKind::Punct('%') if d == 0 => {
                has_arith = true;
                last_mod = Some(k);
            }
            TokenKind::Punct(op @ ('+' | '-' | '/')) if d == 0 => {
                // `->` in a closure type isn't arithmetic.
                if *op == '-'
                    && matches!(
                        inner.get(k + 1).map(|x| &x.kind),
                        Some(TokenKind::Punct('>'))
                    )
                {
                    k += 1;
                } else {
                    has_arith = true;
                }
            }
            TokenKind::Punct('*') if d == 0 && is_binary_arith(inner, k, '*') => {
                has_arith = true;
            }
            _ => {}
        }
        k += 1;
    }
    if !has_arith || has_cmp {
        return false;
    }
    // `(… % LITERAL) as T` with LITERAL <= T::MAX is checked narrowing.
    if let (Some(m), Some(max)) = (last_mod, narrow_target_max(target)) {
        if m + 2 == inner.len() {
            if let Some(v) = inner[m + 1].kind.int_value() {
                if v > 0 && v - 1 <= max {
                    return false;
                }
            }
        }
    }
    true
}

/// Distinguish binary `+`/`*` (arith) from unary deref/reference and
/// other uses: the left neighbour must be a value end, and for `*` the
/// right neighbour must start a value or be `=` (compound assign).
fn is_binary_arith(t: &[Token], i: usize, op: char) -> bool {
    let prev_is_value = i >= 1
        && match &t[i - 1].kind {
            TokenKind::Ident(s) => s != "as" && s != "return" && s != "in" && s != "if",
            TokenKind::Number { .. } => true,
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            _ => false,
        };
    if !prev_is_value {
        return false;
    }
    // Exempt float arithmetic: the rules that consume these facts are
    // about integer counter overflow.
    let float_beside = [i.checked_sub(1).and_then(|j| t.get(j)), t.get(i + 1)]
        .into_iter()
        .flatten()
        .any(|n| matches!(n.kind, TokenKind::Number { is_float: true, .. }));
    if float_beside {
        return false;
    }
    if op == '+' {
        return true;
    }
    matches!(
        t.get(i + 1).map(|x| &x.kind),
        Some(
            TokenKind::Ident(_)
                | TokenKind::Number { .. }
                | TokenKind::Punct('(')
                | TokenKind::Punct('=')
        )
    )
}

/// File-level helper: identifiers that are visibly Hash-keyed in this
/// token stream (`x: HashMap<…>`, `let mut y = HashSet::new()`, …).
pub fn hash_typed_idents(tokens: &[Token]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for (i, tok) in tokens.iter().enumerate() {
        let Some(container @ ("HashMap" | "HashSet")) = tok.kind.ident() else {
            continue;
        };
        let _ = container;
        // Walk back over type sugar to the `:` or `=` and the bound name.
        let mut j = i;
        while j >= 1 {
            match tokens[j - 1].kind.ident() {
                Some("mut") | Some("std") | Some("collections") => j -= 1,
                _ => match tokens[j - 1].kind {
                    TokenKind::Punct('&') | TokenKind::Punct(':') => j -= 1,
                    TokenKind::Punct('=') => {
                        j -= 1;
                        break;
                    }
                    _ => break,
                },
            }
        }
        if j < i {
            if let Some(name) = tokens[j.saturating_sub(1)].kind.ident() {
                out.insert(name.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    fn first_fn(p: &ParsedFile) -> &FnItem {
        p.items
            .iter()
            .find_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .expect("a fn item")
    }

    #[test]
    fn parses_fn_with_calls_and_methods() {
        let p = parse_src(
            "pub fn run(x: u32) -> u64 {\n let t = std::time::Instant::now();\n buf.retain(|v| v > 0);\n helper(x);\n t.elapsed().as_nanos() as u64\n}",
        );
        let f = first_fn(&p);
        assert!(f.is_pub);
        assert_eq!(f.name, "run");
        let calls: Vec<String> = f
            .body
            .paths
            .iter()
            .filter(|c| c.kind == PathKind::Call)
            .map(|c| c.dotted())
            .collect();
        assert!(
            calls.contains(&"std::time::Instant::now".to_string()),
            "{calls:?}"
        );
        assert!(calls.contains(&"helper".to_string()));
        let methods: Vec<&str> = f
            .body
            .method_calls
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert!(methods.contains(&"retain"));
        assert_eq!(
            f.body
                .method_calls
                .iter()
                .find(|m| m.name == "retain")
                .and_then(|m| m.receiver.as_deref()),
            Some("buf")
        );
    }

    #[test]
    fn modules_and_use_trees_flatten() {
        let p = parse_src(
            "use std::collections::{BTreeMap, BTreeSet as Set};\nuse crate::sim::*;\nmod inner { pub fn f() {} }\nmod filemod;\n",
        );
        let uses: Vec<&UseItem> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Use(u) => Some(u),
                _ => None,
            })
            .collect();
        assert_eq!(uses.len(), 2);
        let b = &uses[0].bindings;
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].alias, "BTreeMap");
        assert_eq!(b[1].alias, "Set");
        assert_eq!(b[1].path, vec!["std", "collections", "BTreeSet"]);
        assert!(uses[1].bindings[0].glob);
        assert_eq!(uses[1].bindings[0].path, vec!["crate", "sim"]);

        let mods: Vec<&ModItem> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Mod(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(mods.len(), 2);
        assert!(mods[0].inline.is_some());
        assert!(mods[1].inline.is_none());
    }

    #[test]
    fn impls_capture_methods_with_type_name() {
        let p = parse_src(
            "impl<T: Ord> Wheel<T> {\n pub fn push(&mut self, v: T) { self.items.push(v); }\n fn drain(&mut self) {}\n}\nimpl Display for Wheel<u32> { fn fmt(&self) {} }",
        );
        let impls: Vec<&ImplItem> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Impl(im) => Some(im),
                _ => None,
            })
            .collect();
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].type_name, "Wheel");
        assert_eq!(impls[0].fns.len(), 2);
        assert!(impls[0].fns[0].is_pub);
        assert_eq!(impls[1].type_name, "Wheel");
        assert_eq!(impls[1].fns[0].name, "fmt");
    }

    #[test]
    fn test_attributes_propagate() {
        let p = parse_src(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n #[test]\n fn t() { x.unwrap(); }\n fn helper() {}\n}",
        );
        assert!(!first_fn(&p).in_test);
        let m = p
            .items
            .iter()
            .find_map(|i| match i {
                Item::Mod(m) => Some(m),
                _ => None,
            })
            .expect("mod");
        assert!(m.in_test);
        for item in m.inline.as_ref().expect("inline") {
            if let Item::Fn(f) = item {
                assert!(f.in_test, "{}", f.name);
            }
        }
    }

    #[test]
    fn cast_classification() {
        let src = "fn f(a: u64, b: u64, xs: &[u8]) {\n let _ = a as u32;\n let _ = xs.len() as u32;\n let _ = (a + b) as u16;\n let _ = (a >> 3) as u32;\n let _ = (a > b) as u8;\n let _ = (a % 251) as u8;\n let _ = (a % 9999) as u8;\n let _ = f(a) as u32;\n}";
        let p = parse_src(src);
        let casts = &first_fn(&p).body.casts;
        let arith: Vec<(&str, bool)> = casts
            .iter()
            .map(|c| (c.target.as_str(), c.arith_source))
            .collect();
        assert_eq!(
            arith,
            vec![
                ("u32", false), // plain variable
                ("u32", false), // call result
                ("u16", true),  // computed sum
                ("u32", true),  // shift
                ("u8", false),  // comparison (bool)
                ("u8", false),  // modulo-bounded below u8::MAX
                ("u8", true),   // modulo bound exceeds u8::MAX
                ("u32", false), // call result
            ]
        );
    }

    #[test]
    fn arith_ops_distinguish_deref_from_mult() {
        let src = "fn f(a: u64, v: &mut u64) {\n let b = a + 1;\n *v = (*v).max(a);\n let c = a * 2;\n let d = &*v;\n let e = a * (b);\n f(*v);\n let g = 2.0 * 3.0;\n}";
        let p = parse_src(src);
        let ops: Vec<char> = first_fn(&p).body.arith.iter().map(|a| a.op).collect();
        assert_eq!(ops, vec!['+', '*', '*']);
    }

    #[test]
    fn statics_and_mut() {
        let p = parse_src("static mut COUNTER: u64 = 0;\nstatic NAME: &str = \"x\";");
        let statics: Vec<&StaticItem> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Static(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(statics.len(), 2);
        assert!(statics[0].mutable);
        assert_eq!(statics[0].name, "COUNTER");
        assert!(!statics[1].mutable);
    }

    #[test]
    fn format_strings_are_visible() {
        let p = parse_src("fn f(x: &u32) { let s = format!(\"at {:p}\", x); }");
        let f = first_fn(&p);
        assert!(f.body.strings.iter().any(|s| s.text.contains("{:p}")));
        assert!(f
            .body
            .paths
            .iter()
            .any(|c| c.kind == PathKind::Macro && c.last() == "format"));
    }

    #[test]
    fn hash_typed_idents_detects_decls() {
        let toks = lex(
            "fn f(flows: &HashMap<u32, u64>) { let mut seen = HashSet::new(); let ok: BTreeMap<u8,u8> = BTreeMap::new(); }",
        );
        let names = hash_typed_idents(&toks);
        assert!(names.contains("flows"));
        assert!(names.contains("seen"));
        assert!(!names.contains("ok"));
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "use ::;",
            "pub pub pub",
            "fn f() { (((",
            "mod m { fn g() {",
            "#[",
            "static",
            "impl for for {}",
            "fn f<T() { as as as }",
        ] {
            let _ = parse_src(src);
        }
    }
}
