fn main() {
    std::process::exit(lsl_audit::run());
}
