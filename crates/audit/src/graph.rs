//! Workspace symbol table and call graph.
//!
//! Built on [`crate::parser`]: every crate's module tree is loaded
//! (`src/lib.rs` plus `src/main.rs` / `src/bin/*.rs` as their own
//! roots), `use` items become per-module scope bindings, and each fn /
//! impl-method becomes a [`Symbol`]. Call edges are resolved through
//! module scopes — `use`-aware, `crate::`/`super::`/`self::`-aware, and
//! cross-crate via the workspace lib names (`lsl_netsim::…`). Method
//! calls (`x.f(…)`) cannot be typed without inference, so they resolve
//! by name to every known method `f` in the caller's dependency
//! closure — a deliberate over-approximation: the taint pass prefers
//! false edges over missed nondeterminism.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::parser::{self, BodyFacts, Item, UseBinding};

pub type SymbolId = usize;
pub type ModuleId = usize;

/// One fn or impl-method in the workspace.
#[derive(Debug)]
pub struct Symbol {
    pub crate_dir: String,
    pub module: ModuleId,
    /// `Some(type)` for impl methods.
    pub type_name: Option<String>,
    pub name: String,
    /// Workspace-relative file, `/`-separated.
    pub file: String,
    pub line: u32,
    pub end_line: u32,
    pub is_pub: bool,
    pub in_test: bool,
    pub facts: BodyFacts,
}

impl Symbol {
    /// `Type::name` or `name`, for messages.
    pub fn display(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

#[derive(Debug)]
pub struct Module {
    pub crate_dir: String,
    /// Path within the crate (`[]` = crate root).
    pub path: Vec<String>,
    pub file: String,
    pub parent: Option<ModuleId>,
    /// The module tree root `crate::` resolves to (a bin target is its
    /// own root).
    pub root: ModuleId,
    pub uses: Vec<UseBinding>,
    pub children: BTreeMap<String, ModuleId>,
    /// Free fns by name (duplicates possible under cfg).
    pub fns: BTreeMap<String, Vec<SymbolId>>,
    /// Impl methods by (type, method).
    pub methods: BTreeMap<(String, String), Vec<SymbolId>>,
    /// Names of `static mut` items declared here.
    pub statics_mut: Vec<String>,
}

/// A resolved call edge.
#[derive(Debug, Clone)]
pub struct CallEdge {
    pub to: SymbolId,
    pub line: u32,
    pub col: u32,
    /// How the call site spelled it (`helper`, `.record`, …).
    pub via: String,
}

/// A call that resolved outside the workspace (`std::…`).
#[derive(Debug, Clone)]
pub struct ExternalRef {
    /// Normalized `::`-joined path (`std::time::Instant::now`).
    pub path: String,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug)]
pub struct CrateInfo {
    pub dir: String,
    /// Library identifier (`lsl_netsim`).
    pub lib_name: String,
    /// Workspace crates this crate depends on (dir names, direct).
    pub deps: BTreeSet<String>,
}

#[derive(Debug)]
pub enum Resolution {
    Sym(Vec<SymbolId>),
    External(String),
    Unknown,
}

#[derive(Debug, Default)]
pub struct Workspace {
    pub symbols: Vec<Symbol>,
    pub modules: Vec<Module>,
    pub crates: BTreeMap<String, CrateInfo>,
    /// Per-symbol resolved workspace call edges.
    pub calls: Vec<Vec<CallEdge>>,
    /// Per-symbol external references (calls *and* path mentions).
    pub externals: Vec<Vec<ExternalRef>>,
    /// Method name → symbols, for receiver-typed calls.
    method_index: BTreeMap<String, Vec<SymbolId>>,
    /// (type, method) → symbols, crate-wide fallback.
    typed_method_index: BTreeMap<(String, String), Vec<SymbolId>>,
    /// lib name → crate dir.
    lib_to_dir: BTreeMap<String, String>,
    /// crate dir → transitive dependency closure (incl. itself).
    dep_closure: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Load and link every crate under `root` (crates/* plus the root
    /// package's own `src/` as crate `lsl`).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut ws = Workspace::default();
        let mut crate_dirs: Vec<(String, PathBuf)> = Vec::new();
        let crates_dir = root.join("crates");
        if let Ok(rd) = fs::read_dir(&crates_dir) {
            for e in rd.flatten() {
                let p = e.path();
                if p.is_dir() && p.join("src").is_dir() {
                    let name = p
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or_default()
                        .to_string();
                    crate_dirs.push((name, p));
                }
            }
        }
        crate_dirs.sort();
        if root.join("src").is_dir() {
            crate_dirs.push(("lsl".to_string(), root.to_path_buf()));
        }

        // First pass: manifests (package names, workspace deps).
        let mut pkg_to_dir = BTreeMap::new();
        let mut raw_deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (dir_name, dir) in &crate_dirs {
            let manifest = fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
            let pkg = package_name(&manifest).unwrap_or_else(|| dir_name.clone());
            pkg_to_dir.insert(pkg.clone(), dir_name.clone());
            ws.lib_to_dir
                .insert(pkg.replace('-', "_"), dir_name.clone());
            raw_deps.insert(dir_name.clone(), dependency_packages(&manifest));
            ws.crates.insert(
                dir_name.clone(),
                CrateInfo {
                    dir: dir_name.clone(),
                    lib_name: pkg.replace('-', "_"),
                    deps: BTreeSet::new(),
                },
            );
        }
        for (dir_name, pkgs) in raw_deps {
            let deps: BTreeSet<String> = pkgs
                .iter()
                .filter_map(|p| pkg_to_dir.get(p).cloned())
                .collect();
            if let Some(info) = ws.crates.get_mut(&dir_name) {
                info.deps = deps;
            }
        }
        ws.dep_closure = dep_closure(&ws.crates);

        // Second pass: module trees.
        for (dir_name, dir) in &crate_dirs {
            let src = dir.join("src");
            let lib = src.join("lib.rs");
            if lib.is_file() {
                ws.load_module_tree(root, dir_name, &lib, Vec::new(), None)?;
            }
            let main = src.join("main.rs");
            if main.is_file() {
                ws.load_module_tree(root, dir_name, &main, vec!["main".into()], None)?;
            }
            let bin_dir = src.join("bin");
            if let Ok(rd) = fs::read_dir(&bin_dir) {
                let mut bins: Vec<PathBuf> = rd
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                    .collect();
                bins.sort();
                for bin in bins {
                    let stem = bin
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("bin")
                        .to_string();
                    ws.load_module_tree(root, dir_name, &bin, vec!["bin".into(), stem], None)?;
                }
            }
        }

        ws.link();
        Ok(ws)
    }

    /// Parse `file` as a module and recurse into its file submodules.
    fn load_module_tree(
        &mut self,
        root: &Path,
        crate_dir: &str,
        file: &Path,
        mod_path: Vec<String>,
        parent: Option<ModuleId>,
    ) -> Result<ModuleId, String> {
        let text = fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let rel = rel_path(root, file);
        let parsed = parser::parse(&lexer::lex(&text));

        let id = self.modules.len();
        let root_id = parent.map(|p| self.modules[p].root).unwrap_or(id);
        self.modules.push(Module {
            crate_dir: crate_dir.to_string(),
            path: mod_path,
            file: rel,
            parent,
            root: root_id,
            uses: Vec::new(),
            children: BTreeMap::new(),
            fns: BTreeMap::new(),
            methods: BTreeMap::new(),
            statics_mut: Vec::new(),
        });

        // Directory that holds this module's file submodules.
        let file_name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let child_dir = if matches!(file_name, "lib.rs" | "main.rs" | "mod.rs") {
            file.parent().map(Path::to_path_buf)
        } else {
            file.parent()
                .map(|d| d.join(file.file_stem().and_then(|s| s.to_str()).unwrap_or("")))
        };

        self.add_items(root, id, parsed.items, child_dir.as_deref(), false)?;
        Ok(id)
    }

    /// Install a parsed item list into module `m`.
    fn add_items(
        &mut self,
        root: &Path,
        m: ModuleId,
        items: Vec<Item>,
        child_dir: Option<&Path>,
        in_test: bool,
    ) -> Result<(), String> {
        for item in items {
            match item {
                Item::Fn(f) => {
                    self.add_fn(m, None, f, in_test);
                }
                Item::Impl(im) => {
                    for f in im.fns {
                        self.add_fn(m, Some(im.type_name.clone()), f, in_test || im.in_test);
                    }
                }
                Item::Use(u) => self.modules[m].uses.extend(u.bindings),
                Item::Static(s) => {
                    if s.mutable {
                        self.modules[m].statics_mut.push(s.name);
                    }
                }
                Item::Mod(mi) => {
                    let name = mi.name.clone();
                    match mi.inline {
                        Some(inner) => {
                            let id = self.modules.len();
                            let (crate_dir, file, root_id, path) = {
                                let parent = &self.modules[m];
                                let mut p = parent.path.clone();
                                p.push(name.clone());
                                (
                                    parent.crate_dir.clone(),
                                    parent.file.clone(),
                                    parent.root,
                                    p,
                                )
                            };
                            self.modules.push(Module {
                                crate_dir,
                                path,
                                file,
                                parent: Some(m),
                                root: root_id,
                                uses: Vec::new(),
                                children: BTreeMap::new(),
                                fns: BTreeMap::new(),
                                methods: BTreeMap::new(),
                                statics_mut: Vec::new(),
                            });
                            self.modules[m].children.insert(name.clone(), id);
                            // An inline `mod x { }` nests inside the same
                            // file; its file submodules live under `x/`.
                            let sub_dir = child_dir.map(|d| d.join(&name));
                            self.add_items(
                                root,
                                id,
                                inner,
                                sub_dir.as_deref(),
                                in_test || mi.in_test,
                            )?;
                        }
                        None => {
                            let Some(dir) = child_dir else { continue };
                            let cand_a = dir.join(format!("{name}.rs"));
                            let cand_b = dir.join(&name).join("mod.rs");
                            let target = if cand_a.is_file() {
                                cand_a
                            } else if cand_b.is_file() {
                                cand_b
                            } else {
                                continue; // cfg-gated or missing — skip
                            };
                            let crate_dir = self.modules[m].crate_dir.clone();
                            let mut p = self.modules[m].path.clone();
                            p.push(name.clone());
                            let id =
                                self.load_module_tree(root, &crate_dir, &target, p, Some(m))?;
                            self.modules[m].children.insert(name, id);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn add_fn(
        &mut self,
        m: ModuleId,
        type_name: Option<String>,
        f: parser::FnItem,
        enclosing_test: bool,
    ) {
        let id = self.symbols.len();
        let in_test = f.in_test || enclosing_test;
        self.symbols.push(Symbol {
            crate_dir: self.modules[m].crate_dir.clone(),
            module: m,
            type_name: type_name.clone(),
            name: f.name.clone(),
            file: self.modules[m].file.clone(),
            line: f.line,
            end_line: f.end_line,
            is_pub: f.is_pub,
            in_test,
            facts: f.body,
        });
        match type_name {
            Some(t) => {
                self.modules[m]
                    .methods
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                self.typed_method_index
                    .entry((t, f.name.clone()))
                    .or_default()
                    .push(id);
                self.method_index.entry(f.name).or_default().push(id);
            }
            None => {
                self.modules[m].fns.entry(f.name).or_default().push(id);
            }
        }
    }

    /// Resolve every call site into edges / external refs.
    fn link(&mut self) {
        let n = self.symbols.len();
        let mut calls = vec![Vec::new(); n];
        let mut externals = vec![Vec::new(); n];
        for id in 0..n {
            let m = self.symbols[id].module;
            let caller_crate = self.symbols[id].crate_dir.clone();
            let allowed = self
                .dep_closure
                .get(&caller_crate)
                .cloned()
                .unwrap_or_default();

            // Path references and calls.
            for p in &self.symbols[id].facts.paths {
                match self.resolve(m, &p.segments, 0) {
                    Resolution::Sym(targets) => {
                        if p.kind != parser::PathKind::Ref {
                            for to in targets {
                                calls[id].push(CallEdge {
                                    to,
                                    line: p.line,
                                    col: p.col,
                                    via: p.dotted(),
                                });
                            }
                        }
                    }
                    Resolution::External(path) => externals[id].push(ExternalRef {
                        path,
                        line: p.line,
                        col: p.col,
                    }),
                    Resolution::Unknown => {}
                }
            }

            // Method calls: by-name over the dependency closure.
            for mc in &self.symbols[id].facts.method_calls {
                if let Some(cands) = self.method_index.get(&mc.name) {
                    for &to in cands {
                        if allowed.contains(&self.symbols[to].crate_dir) {
                            calls[id].push(CallEdge {
                                to,
                                line: mc.line,
                                col: mc.col,
                                via: format!(".{}", mc.name),
                            });
                        }
                    }
                }
            }
        }
        self.calls = calls;
        self.externals = externals;
    }

    /// Resolve a path mention from inside module `m`.
    pub fn resolve(&self, m: ModuleId, segs: &[String], depth: u32) -> Resolution {
        if segs.is_empty() || depth > 8 {
            return Resolution::Unknown;
        }
        let first = segs[0].as_str();
        match first {
            "crate" => return self.resolve_abs(self.modules[m].root, &segs[1..], depth + 1),
            "self" => return self.resolve_abs(m, &segs[1..], depth + 1),
            "super" => {
                let Some(p) = self.modules[m].parent else {
                    return Resolution::Unknown;
                };
                return self.resolve(p, &prepend("self", &segs[1..]), depth + 1);
            }
            "std" | "core" | "alloc" => return Resolution::External(segs.join("::")),
            _ => {}
        }
        // `use` bindings shadow everything else.
        if let Some(b) = self.modules[m]
            .uses
            .iter()
            .find(|b| !b.glob && b.alias == first)
        {
            let mut full = b.path.clone();
            full.extend_from_slice(&segs[1..]);
            return self.resolve(m, &full, depth + 1);
        }
        // Local items.
        if let Some(r) = self.lookup_in(m, segs, depth) {
            return r;
        }
        // Child modules of the current module are in scope unqualified.
        if segs.len() > 1 {
            if let Some(&child) = self.modules[m].children.get(first) {
                return self.resolve_abs(child, &segs[1..], depth + 1);
            }
        }
        // Sibling crates by lib name.
        if let Some(dir) = self.lib_to_dir.get(first) {
            if let Some(root) = self.crate_root(dir) {
                return self.resolve_abs(root, &segs[1..], depth + 1);
            }
        }
        // Glob imports: try each glob's module.
        for b in self.modules[m].uses.clone().iter().filter(|b| b.glob) {
            let mut full = b.path.clone();
            full.extend_from_slice(segs);
            if let r @ (Resolution::Sym(_) | Resolution::External(_)) =
                self.resolve(m, &full, depth + 1)
            {
                return r;
            }
        }
        Resolution::Unknown
    }

    /// Resolve `segs` downward from module `m` (no scope walking).
    fn resolve_abs(&self, m: ModuleId, segs: &[String], depth: u32) -> Resolution {
        if segs.is_empty() || depth > 8 {
            return Resolution::Unknown;
        }
        let mut cur = m;
        let mut rest = segs;
        loop {
            let first = rest[0].as_str();
            if first == "self" {
                rest = &rest[1..];
                if rest.is_empty() {
                    return Resolution::Unknown;
                }
                continue;
            }
            if first == "super" {
                match self.modules[cur].parent {
                    Some(p) => {
                        cur = p;
                        rest = &rest[1..];
                        if rest.is_empty() {
                            return Resolution::Unknown;
                        }
                        continue;
                    }
                    None => return Resolution::Unknown,
                }
            }
            if rest.len() > 1 {
                if let Some(&child) = self.modules[cur].children.get(first) {
                    cur = child;
                    rest = &rest[1..];
                    continue;
                }
            }
            break;
        }
        self.lookup_in(cur, rest, depth)
            .unwrap_or(Resolution::Unknown)
    }

    /// Items directly inside module `m` matching `segs` (fn, method, or
    /// a re-export).
    fn lookup_in(&self, m: ModuleId, segs: &[String], depth: u32) -> Option<Resolution> {
        match segs.len() {
            1 => self.modules[m]
                .fns
                .get(&segs[0])
                .map(|ids| Resolution::Sym(ids.clone())),
            2 => {
                let key = (segs[0].clone(), segs[1].clone());
                if let Some(ids) = self.modules[m].methods.get(&key) {
                    return Some(Resolution::Sym(ids.clone()));
                }
                // Type is declared here but the impl lives elsewhere in
                // the same crate: fall back to the crate-filtered index.
                if let Some(ids) = self.typed_method_index.get(&key) {
                    let crate_dir = &self.modules[m].crate_dir;
                    let allowed = self.dep_closure.get(crate_dir)?;
                    let hits: Vec<SymbolId> = ids
                        .iter()
                        .copied()
                        .filter(|&s| allowed.contains(&self.symbols[s].crate_dir))
                        .collect();
                    if !hits.is_empty() {
                        return Some(Resolution::Sym(hits));
                    }
                }
                // Re-export chains (`pub use`): follow the binding.
                let b = self.modules[m]
                    .uses
                    .iter()
                    .find(|b| !b.glob && b.alias == segs[0])?;
                let mut full = b.path.clone();
                full.extend_from_slice(&segs[1..]);
                Some(self.resolve(m, &full, depth + 1))
            }
            _ => {
                // Deeper paths that didn't match a module chain: follow a
                // re-export if one exists.
                let b = self.modules[m]
                    .uses
                    .iter()
                    .find(|b| !b.glob && b.alias == segs[0])?;
                let mut full = b.path.clone();
                full.extend_from_slice(&segs[1..]);
                Some(self.resolve(m, &full, depth + 1))
            }
        }
    }

    fn crate_root(&self, dir: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.crate_dir == dir && m.path.is_empty())
    }

    /// Reverse adjacency (callee → callers), deduplicated.
    pub fn reverse_calls(&self) -> Vec<Vec<SymbolId>> {
        let mut rev = vec![Vec::new(); self.symbols.len()];
        for (from, edges) in self.calls.iter().enumerate() {
            for e in edges {
                rev[e.to].push(from);
            }
        }
        for v in &mut rev {
            v.sort();
            v.dedup();
        }
        rev
    }
}

fn prepend(head: &str, rest: &[String]) -> Vec<String> {
    let mut v = Vec::with_capacity(rest.len() + 1);
    v.push(head.to_string());
    v.extend_from_slice(rest);
    v
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// `name = "…"` under `[package]`.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Package names referenced from any `[…dependencies]` section.
fn dependency_packages(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(key) = line.split(['=', '.']).next() {
            let key = key.trim();
            if !key.is_empty() {
                out.push(key.to_string());
            }
        }
    }
    out
}

/// Transitive dependency closure per crate (including itself).
fn dep_closure(crates: &BTreeMap<String, CrateInfo>) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    for dir in crates.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            if !seen.insert(d.clone()) {
                continue;
            }
            if let Some(info) = crates.get(&d) {
                for dep in &info.deps {
                    if !seen.contains(dep) {
                        stack.push(dep.clone());
                    }
                }
            }
        }
        out.insert(dir.clone(), seen);
    }
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    /// Minimal self-cleaning temp dir (no external crates offline).
    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new() -> TempDir {
            let n = NEXT.fetch_add(1, Ordering::SeqCst);
            let p = std::env::temp_dir().join(format!("lsl-audit-test-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&p).expect("create temp dir");
            TempDir(p)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Materialize `files` under a fresh temp dir.
    pub fn scratch_dir(files: &[(&str, &str)]) -> TempDir {
        let td = TempDir::new();
        for (rel, text) in files {
            let p = td.path().join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(&p, text).expect("write");
        }
        td
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::scratch_dir;
    use super::*;

    fn scratch(files: &[(&str, &str)]) -> (super::testutil::TempDir, Workspace) {
        let td = scratch_dir(files);
        let ws = Workspace::load(td.path()).expect("load");
        (td, ws)
    }

    const MANIFEST_A: &str = "[package]\nname = \"lsl-aaa\"\n";
    const MANIFEST_B: &str =
        "[package]\nname = \"lsl-bbb\"\n\n[dependencies]\nlsl-aaa.workspace = true\n";

    #[test]
    fn cross_crate_and_module_resolution() {
        let (_td, ws) = scratch(&[
            ("crates/aaa/Cargo.toml", MANIFEST_A),
            (
                "crates/aaa/src/lib.rs",
                "pub mod util;\npub fn top() { util::helper(); }\n",
            ),
            (
                "crates/aaa/src/util.rs",
                "pub fn helper() { super::top(); }\npub struct W;\nimpl W { pub fn go(&self) {} }\n",
            ),
            ("crates/bbb/Cargo.toml", MANIFEST_B),
            (
                "crates/bbb/src/lib.rs",
                "use lsl_aaa::util::W;\npub fn run() { lsl_aaa::top(); let w = W; W::go(&w); crate::run2(); }\npub fn run2() {}\n",
            ),
        ]);

        let sym = |name: &str| {
            ws.symbols
                .iter()
                .position(|s| s.name == name)
                .unwrap_or_else(|| panic!("symbol {name}"))
        };
        let callees = |name: &str| -> Vec<String> {
            ws.calls[sym(name)]
                .iter()
                .map(|e| ws.symbols[e.to].display())
                .collect()
        };

        assert!(callees("top").contains(&"helper".to_string()));
        assert!(
            callees("helper").contains(&"top".to_string()),
            "{:?}",
            callees("helper")
        );
        let run = callees("run");
        assert!(run.contains(&"top".to_string()), "{run:?}");
        assert!(run.contains(&"W::go".to_string()), "{run:?}");
        assert!(run.contains(&"run2".to_string()), "{run:?}");
    }

    #[test]
    fn externals_are_recorded_with_use_resolution() {
        let (_td, ws) = scratch(&[
            ("crates/aaa/Cargo.toml", MANIFEST_A),
            (
                "crates/aaa/src/lib.rs",
                "use std::time::Instant;\npub fn f() { let t = Instant::now(); std::env::var(\"X\").ok(); }\n",
            ),
        ]);
        let id = ws.symbols.iter().position(|s| s.name == "f").expect("f");
        let ext: Vec<&str> = ws.externals[id].iter().map(|e| e.path.as_str()).collect();
        assert!(
            ext.contains(&"std::time::Instant::now"),
            "use-alias resolution failed: {ext:?}"
        );
        assert!(ext.contains(&"std::env::var"), "{ext:?}");
    }

    #[test]
    fn method_calls_stay_within_dependency_closure() {
        let (_td, ws) = scratch(&[
            ("crates/aaa/Cargo.toml", MANIFEST_A),
            (
                "crates/aaa/src/lib.rs",
                "pub struct S;\nimpl S { pub fn poke(&self) {} }\n",
            ),
            ("crates/bbb/Cargo.toml", MANIFEST_B),
            (
                "crates/bbb/src/lib.rs",
                "pub fn caller(s: &lsl_aaa::S) { s.poke(); }\n",
            ),
            ("crates/ccc/Cargo.toml", "[package]\nname = \"lsl-ccc\"\n"),
            (
                "crates/ccc/src/lib.rs",
                "pub fn lone(x: &X) { x.poke(); }\npub struct X;\n",
            ),
        ]);
        let caller = ws
            .symbols
            .iter()
            .position(|s| s.name == "caller")
            .expect("caller");
        assert!(
            ws.calls[caller]
                .iter()
                .any(|e| ws.symbols[e.to].display() == "S::poke"),
            "bbb depends on aaa, .poke() should edge to S::poke"
        );
        // ccc does NOT depend on aaa: no edge to S::poke.
        let lone = ws
            .symbols
            .iter()
            .position(|s| s.name == "lone")
            .expect("lone");
        assert!(
            !ws.calls[lone]
                .iter()
                .any(|e| ws.symbols[e.to].display() == "S::poke"),
            "dependency filtering failed"
        );
    }

    #[test]
    fn bins_are_their_own_roots_and_test_mods_are_marked() {
        let (_td, ws) = scratch(&[
            ("crates/aaa/Cargo.toml", MANIFEST_A),
            (
                "crates/aaa/src/lib.rs",
                "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests { #[test] fn t() { crate::lib_fn(); } }\n",
            ),
            (
                "crates/aaa/src/bin/tool.rs",
                "fn main() { helper(); lsl_aaa::lib_fn(); }\nfn helper() {}\n",
            ),
        ]);
        let main_id = ws
            .symbols
            .iter()
            .position(|s| s.name == "main")
            .expect("main");
        let names: Vec<String> = ws.calls[main_id]
            .iter()
            .map(|e| ws.symbols[e.to].display())
            .collect();
        assert!(names.contains(&"helper".to_string()), "{names:?}");
        assert!(names.contains(&"lib_fn".to_string()), "{names:?}");
        let t = ws.symbols.iter().find(|s| s.name == "t").expect("t");
        assert!(t.in_test);
        assert!(ws.symbols[main_id].file.contains("src/bin/tool.rs"));
    }
}
