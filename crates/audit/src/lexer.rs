//! A minimal Rust lexer: just enough to answer "which identifiers,
//! operators and literals appear outside comments and strings, and
//! where". The workspace cannot depend on `syn` (offline build), and the
//! audit rules are lexical by design — they ban *names*, not semantics.

/// One significant token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (byte offset within the line).
    pub col: u32,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    /// An integer or float literal; `is_float` covers `1.0`, `1e9`,
    /// `1f64`, `1.5f32` — anything with a fractional/exponent part or a
    /// float suffix. `text` is the literal as written (digits, `_`
    /// separators, suffix) so the parser can recover small constant
    /// values (e.g. the modulus in `(x % 251) as u8`).
    Number {
        is_float: bool,
        text: String,
    },
    /// The *content* of a string literal (regular, byte or raw). The
    /// lexical rules ignore these, but the parser inspects format
    /// strings for nondeterministic conversions like `{:p}`.
    Str(String),
    /// `==` or `!=` (the only multi-char operators the rules care about).
    EqEq,
    NotEq,
    /// Any other single punctuation character.
    Punct(char),
}

impl TokenKind {
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The value of a non-float integer literal, if it fits `u64`.
    pub fn int_value(&self) -> Option<u64> {
        let TokenKind::Number {
            is_float: false,
            text,
        } = self
        else {
            return None;
        };
        let t: String = text.chars().filter(|&c| c != '_').collect();
        let t = t
            .trim_end_matches("u8")
            .trim_end_matches("u16")
            .trim_end_matches("u32")
            .trim_end_matches("u64")
            .trim_end_matches("usize")
            .trim_end_matches("i8")
            .trim_end_matches("i16")
            .trim_end_matches("i32")
            .trim_end_matches("i64")
            .trim_end_matches("isize");
        if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
            u64::from_str_radix(bin, 2).ok()
        } else if let Some(oct) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
            u64::from_str_radix(oct, 8).ok()
        } else {
            t.parse().ok()
        }
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

/// Tokenize `src`, dropping comments and char literals. String literal
/// *content* is kept (as [`TokenKind::Str`]) so syntax-aware passes can
/// inspect format strings; the lexical rules ignore it.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => skip_line_comment(&mut c),
            b'/' if c.peek(1) == Some(b'*') => skip_block_comment(&mut c),
            b'"' => {
                let s = lex_string(&mut c);
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_raw_string(&c) => {
                let s = lex_raw_string(&mut c);
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                    col,
                });
            }
            b'b' if c.peek(1) == Some(b'"') => {
                c.bump();
                let s = lex_string(&mut c);
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                    col,
                });
            }
            b'b' if c.peek(1) == Some(b'\'') => {
                c.bump();
                skip_char_literal(&mut c);
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'a'`). A lifetime is
                // a quote followed by an identifier NOT closed by a
                // quote right after.
                if is_char_literal(&c) {
                    skip_char_literal(&mut c);
                } else {
                    c.bump(); // the quote; the identifier lexes next
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let mut s = String::new();
                while let Some(b) = c.peek(0) {
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        s.push(b as char);
                        c.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let (is_float, text) = lex_number(&mut c);
                out.push(Token {
                    kind: TokenKind::Number { is_float, text },
                    line,
                    col,
                });
            }
            b'=' if c.peek(1) == Some(b'=') => {
                c.bump();
                c.bump();
                out.push(Token {
                    kind: TokenKind::EqEq,
                    line,
                    col,
                });
            }
            b'!' if c.peek(1) == Some(b'=') => {
                c.bump();
                c.bump();
                out.push(Token {
                    kind: TokenKind::NotEq,
                    line,
                    col,
                });
            }
            _ => {
                c.bump();
                // Multi-byte UTF-8 continuation bytes only ever occur in
                // comments/strings in this codebase; emit ASCII punct.
                if b.is_ascii() {
                    out.push(Token {
                        kind: TokenKind::Punct(b as char),
                        line,
                        col,
                    });
                }
            }
        }
    }
    out
}

fn skip_line_comment(c: &mut Cursor) {
    while let Some(b) = c.bump() {
        if b == b'\n' {
            break;
        }
    }
}

fn skip_block_comment(c: &mut Cursor) {
    c.bump(); // /
    c.bump(); // *
    let mut depth = 1u32;
    while depth > 0 {
        match (c.peek(0), c.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                c.bump();
                c.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                c.bump();
                c.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                c.bump();
            }
            (None, _) => break,
        }
    }
}

fn lex_string(c: &mut Cursor) -> String {
    let mut bytes = Vec::new();
    c.bump(); // opening quote
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                // Keep the escaped byte raw; the passes that read string
                // content look for plain substrings like `{:p}`.
                if let Some(e) = c.bump() {
                    bytes.push(b'\\');
                    bytes.push(e);
                }
            }
            b'"' => break,
            _ => bytes.push(b),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// `r"…"`, `r#"…"#`, `br#"…"#` etc.
fn starts_raw_string(c: &Cursor) -> bool {
    let mut i = 0;
    if c.peek(i) == Some(b'b') {
        i += 1;
    }
    if c.peek(i) != Some(b'r') {
        return false;
    }
    i += 1;
    while c.peek(i) == Some(b'#') {
        i += 1;
    }
    c.peek(i) == Some(b'"')
}

fn lex_raw_string(c: &mut Cursor) -> String {
    let mut bytes = Vec::new();
    if c.peek(0) == Some(b'b') {
        c.bump();
    }
    c.bump(); // r
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        c.bump();
        hashes += 1;
    }
    c.bump(); // opening quote
    'scan: while let Some(b) = c.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if c.peek(i) != Some(b'#') {
                    bytes.push(b);
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                c.bump();
            }
            break;
        }
        bytes.push(b);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// True when the quote at the cursor opens a char literal rather than a
/// lifetime: `'x'`, `'\n'`, `'\u{1f600}'`.
fn is_char_literal(c: &Cursor) -> bool {
    match c.peek(1) {
        Some(b'\\') => true,
        Some(_) => {
            // Scan a short identifier; a closing quote right after means
            // a char literal ('a'), otherwise it's a lifetime ('a).
            let mut i = 2;
            while let Some(b) = c.peek(i) {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    i += 1;
                } else {
                    return b == b'\'' && i == 2;
                }
            }
            false
        }
        None => false,
    }
}

fn skip_char_literal(c: &mut Cursor) {
    c.bump(); // opening quote
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

/// Lex a numeric literal; returns whether it is a float (`1.0`, `1e9`,
/// `1f64`, `1.5f32` — but not `1`, `0xe1`, `1..2`) plus the raw text.
fn lex_number(c: &mut Cursor) -> (bool, String) {
    let hex_or_binary = c.peek(0) == Some(b'0')
        && matches!(c.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'));
    let mut text = String::new();
    while let Some(b) = c.peek(0) {
        if b.is_ascii_alphanumeric() || b == b'_' {
            text.push(b as char);
            c.bump();
            // A sign directly after an exponent marker belongs to the
            // literal (`1e-9`).
            if (b == b'e' || b == b'E')
                && !hex_or_binary
                && matches!(c.peek(0), Some(b'+' | b'-'))
                && c.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(c.peek(0).expect("peeked") as char);
                c.bump();
            }
        } else if b == b'.' {
            // `1.0` is a float; `1..2` is a range; `1.method()` is a call.
            match c.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    text.push('.');
                    c.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    let is_float = !hex_or_binary && is_float_text(&text);
    (is_float, text)
}

/// Classify a numeric literal's text as float.
pub fn is_float_text(text: &str) -> bool {
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    // Exponent form: an `e`/`E` followed by an optional sign and digits.
    let bytes = text.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        (b == b'e' || b == b'E')
            && i > 0
            && bytes[i + 1..]
                .first()
                .is_some_and(|&d| d.is_ascii_digit() || d == b'+' || d == b'-')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.kind.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            let x = "HashMap::new()";
            let y = r#"SystemTime"#;
            let z = 'H';
            let l: &'static str = "s";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(
            ids.contains(&"static".to_string()),
            "lifetime lexes as ident"
        );
    }

    #[test]
    fn float_detection() {
        let toks = lex("a == 1.0; b != 2; c == 1e9; d == 0xEF;");
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Number { is_float, .. } => Some(is_float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![true, false, true, false]);
    }

    #[test]
    fn eq_operators_tokenize() {
        let toks = lex("a == b != c <= d");
        assert!(toks.iter().any(|t| t.kind == TokenKind::EqEq));
        assert!(toks.iter().any(|t| t.kind == TokenKind::NotEq));
        // `<=` must NOT produce NotEq/EqEq.
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokenKind::EqEq | TokenKind::NotEq))
                .count(),
            2
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("x\n  yy");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
