//! End-to-end linter checks against the seeded known-bad fixture
//! workspace in `fixtures/bad/`, plus the binary's exit-code contract:
//! nonzero on the fixture, zero on the real (cleaned) workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

use lsl_audit::audit_workspace;
use lsl_audit::rules::RuleId;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("audit crate lives at <root>/crates/audit")
        .to_path_buf()
}

#[test]
fn fixture_trips_every_seeded_rule() {
    let findings = audit_workspace(&fixture_root()).expect("fixture audits");
    let count = |r: RuleId| findings.iter().filter(|f| f.rule == r).count();

    // netsim (sim-domain): Instant at the use + the parameter type,
    // thread::sleep, HashMap at the use + the parameter type, one float ==,
    // one thread::spawn.
    assert_eq!(count(RuleId::WallClock), 3, "{findings:?}");
    assert_eq!(count(RuleId::HashContainer), 2, "{findings:?}");
    assert_eq!(count(RuleId::FloatEq), 1, "{findings:?}");
    assert_eq!(count(RuleId::ThreadSpawn), 1, "{findings:?}");

    // netsim also seeds one println! and one eprintln! in lib code;
    // the prints in src/bin/tool.rs are sanctioned and must not count.
    let prints: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::PrintlnInLib)
        .collect();
    assert_eq!(prints.len(), 2, "{findings:?}");
    assert!(
        prints.iter().all(|f| f.file == "crates/netsim/src/lib.rs"),
        "{findings:?}"
    );

    // session: exactly the one unwrap outside tests — the unwrap inside
    // the #[test] must not count.
    let unwraps: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::UnwrapOutsideTests)
        .collect();
    assert_eq!(unwraps.len(), 1, "{findings:?}");
    assert_eq!(unwraps[0].file, "crates/session/src/lib.rs");

    // Manifest hygiene and allowlist rot.
    let unused: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::UnusedWorkspaceDep)
        .collect();
    assert_eq!(unused.len(), 1, "{findings:?}");
    assert!(unused[0].message.contains("leftover-dep"));
    assert_eq!(count(RuleId::StaleAllow), 1, "{findings:?}");

    // Syntactic rules: one seeded case each. The cast in `pack`, the
    // raw `+` in the stats accumulator, the `retain` on the obs
    // HashMap (legal container there — illegal iteration order).
    assert_eq!(count(RuleId::NarrowingCast), 1, "{findings:?}");
    assert_eq!(count(RuleId::UnsaturatedArith), 1, "{findings:?}");
    let unstable: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::UnstableOrder)
        .collect();
    assert_eq!(unstable.len(), 1, "{findings:?}");
    assert_eq!(unstable[0].file, "crates/obs/src/lib.rs");

    // Whole-program rules must report reachability paths.
    let panics: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::PanicInPubApi)
        .collect();
    assert_eq!(panics.len(), 1, "{findings:?}");
    assert!(
        panics[0].message.contains("begin -> ensure"),
        "{}",
        panics[0].message
    );

    let taints: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::NondetTaint)
        .collect();
    assert_eq!(taints.len(), 1, "{findings:?}");
    assert!(
        taints[0].message.contains("knob -> step"),
        "{}",
        taints[0].message
    );
    assert!(taints[0].message.contains("std::env::var"));

    // Findings arrive sorted: stable output is the CLI's contract.
    let keys: Vec<_> = findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.col, f.rule.name()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be presorted");
}

/// The taint source (an env read in one function) and the sink (the
/// metrics call in another) are invisible to every lexical rule: no
/// other rule may claim the `knob` or `step` lines. This is the
/// regression test for the cross-function flow the analyzer exists for.
#[test]
fn cross_function_taint_is_caught_by_no_lexical_rule() {
    let findings = audit_workspace(&fixture_root()).expect("fixture audits");
    let taint_lines: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == RuleId::NondetTaint)
        .map(|f| f.line)
        .collect();
    assert!(!taint_lines.is_empty());
    for f in &findings {
        if f.rule == RuleId::NondetTaint || f.file != "crates/netsim/src/lib.rs" {
            continue;
        }
        assert!(
            !f.message.contains("env"),
            "a lexical rule covers env reads, taint case is not unique: {f:?}"
        );
    }
}

#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_lsl-audit");

    let bad = Command::new(bin)
        .args(["--root", fixture_root().to_str().unwrap()])
        .output()
        .expect("run lsl-audit on fixture");
    assert_eq!(bad.status.code(), Some(1), "fixture must fail the audit");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("[wall-clock]"), "{stdout}");
    assert!(stdout.contains("rationale:"), "{stdout}");

    let clean = Command::new(bin)
        .args(["--root", workspace_root().to_str().unwrap()])
        .output()
        .expect("run lsl-audit on workspace");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert_eq!(
        clean.status.code(),
        Some(0),
        "workspace must audit clean:\n{stdout}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_lsl-audit"))
        .arg("--frobnicate")
        .output()
        .expect("run lsl-audit");
    assert_eq!(out.status.code(), Some(2));
}
