//! Robustness properties for the analysis front end: the lexer and the
//! item parser must never panic, whatever bytes they are handed. The
//! parser's contract on garbage is *fewer facts*, not a crash — the
//! audit gate runs over every file in the workspace, including ones a
//! future session may leave half-written.

use lsl_audit::{lexer, parser};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (lossily decoded) must lex and parse.
    #[test]
    fn lex_and_parse_survive_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let text = String::from_utf8_lossy(&bytes);
        let tokens = lexer::lex(&text);
        let _ = parser::parse(&tokens);
        let _ = parser::hash_typed_idents(&tokens);
    }

    /// Rust-ish token soup is the harder case: keywords, punctuation
    /// and idents in random order exercise every parser branch that
    /// byte soup (mostly string/comment noise) rarely reaches.
    #[test]
    fn parse_survives_rustish_token_soup(parts in proptest::collection::vec(0usize..24, 0..120)) {
        const VOCAB: [&str; 24] = [
            "fn", "impl", "mod", "use", "static", "pub", "const", "unsafe",
            "as", "for", "{", "}", "(", ")", "<", ">", "::", ";", ",",
            "#[test]", "x", "u32", "1.5", "\"s\"",
        ];
        let src = parts
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        let tokens = lexer::lex(&src);
        let _ = parser::parse(&tokens);
    }

    /// Unterminated constructs (strings, raw strings, block comments,
    /// open braces) must degrade, not hang or panic.
    #[test]
    fn truncation_anywhere_is_survivable(cut in 0usize..200) {
        let full = "fn f<T: Ord>(x: &[u8]) -> u64 { let s = \"str\\n\"; let r = r#\"raw\"#; /* c */ (x.len() + 1) as u64 }";
        let src = &full[..cut.min(full.len())];
        if full.is_char_boundary(src.len()) {
            let _ = parser::parse(&lexer::lex(src));
        }
    }
}
