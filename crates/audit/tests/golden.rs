//! Golden-snapshot tests for the machine-readable output formats.
//!
//! The JSON and SARIF renderings of the known-bad fixture workspace are
//! committed under `tests/golden/`; any drift — a reordered key, an
//! unsorted finding, a changed message — fails here and must be an
//! intentional, reviewed update (regenerate with:
//! `cargo run -p lsl-audit -- --root crates/audit/fixtures/bad --format <fmt>`).

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad")
}

fn golden(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
}

fn run_format(format: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_lsl-audit"))
        .args([
            "--root",
            fixture_root().to_str().expect("utf-8 path"),
            "--format",
            format,
        ])
        .output()
        .expect("run lsl-audit");
    assert_eq!(
        out.status.code(),
        Some(1),
        "fixture must report findings: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn json_output_matches_golden() {
    assert_eq!(run_format("json"), golden("fixture.json"));
}

#[test]
fn sarif_output_matches_golden() {
    assert_eq!(run_format("sarif"), golden("fixture.sarif"));
}

#[test]
fn sarif_is_shaped_like_sarif() {
    let s = run_format("sarif");
    for needle in [
        "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\"",
        "\"version\": \"2.1.0\"",
        "\"name\": \"lsl-audit\"",
        "\"ruleId\": \"nondet-taint\"",
        "\"startLine\":",
    ] {
        assert!(s.contains(needle), "missing {needle}\n{s}");
    }
}

#[test]
fn rule_filter_keeps_stale_allow_unmaskable() {
    // --rule narrows the report, but allowlist rot must survive any
    // filter: it is a hard CI failure, not a view option.
    let out = Command::new(env!("CARGO_BIN_EXE_lsl-audit"))
        .args([
            "--root",
            fixture_root().to_str().expect("utf-8 path"),
            "--rule",
            "float-eq",
        ])
        .output()
        .expect("run lsl-audit");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[float-eq]"), "{stdout}");
    assert!(stdout.contains("[stale-allow]"), "{stdout}");
    assert!(!stdout.contains("[wall-clock]"), "{stdout}");
}

#[test]
fn unknown_format_and_rule_are_usage_errors() {
    for args in [["--format", "yaml"], ["--rule", "no-such-rule"]] {
        let out = Command::new(env!("CARGO_BIN_EXE_lsl-audit"))
            .args(args)
            .output()
            .expect("run lsl-audit");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}
