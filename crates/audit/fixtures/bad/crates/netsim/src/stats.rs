//! Seeds `unsaturated-arith`: accumulator files (stats/metrics) must
//! use the saturating helpers, and this one adds raw.

pub fn bump(total: u64, delta: u64) -> u64 {
    total + delta
}
