//! Seeded violations for a sim-domain crate: wall-clock, hash-container
//! and float-eq must all fire on this file.

use std::collections::HashMap;
use std::time::Instant;

pub fn elapsed_bytes(flows: &HashMap<u32, u64>, started: Instant) -> f64 {
    let secs = started.elapsed().as_secs_f64();
    let total: u64 = flows.values().sum();
    if secs == 0.0 {
        return 0.0;
    }
    total as f64 / secs
}

pub fn wait() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}

pub fn fanout() {
    std::thread::spawn(|| {});
}

pub fn chatty(n: u64) {
    println!("progress: {n}");
    eprintln!("warning: {n}");
}
