//! Seeded violations for a sim-domain crate: wall-clock, hash-container
//! and float-eq must all fire on this file.

pub mod stats;

use std::collections::HashMap;
use std::time::Instant;

pub fn elapsed_bytes(flows: &HashMap<u32, u64>, started: Instant) -> f64 {
    let secs = started.elapsed().as_secs_f64();
    let total: u64 = flows.values().sum();
    if secs == 0.0 {
        return 0.0;
    }
    total as f64 / secs
}

pub fn wait() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}

pub fn fanout() {
    std::thread::spawn(|| {});
}

pub fn chatty(n: u64) {
    println!("progress: {n}");
    eprintln!("warning: {n}");
}

/// Seeds `narrowing-cast`: the sum can exceed u16::MAX and `as`
/// truncates it silently.
pub fn pack(a: u64, b: u64) -> u16 {
    (a + b) as u16
}

/// The taint *source*: an environment read, which no lexical rule
/// covers — only the call-graph pass connects it to a sink.
fn knob() -> u64 {
    std::env::var("FIXTURE_KNOB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The taint *path*: the nondeterministic value crosses a function
/// boundary before reaching the metrics sink, so `nondet-taint` must
/// report the `knob -> step` chain.
pub fn step() {
    let k = knob();
    fixture_obs::counter_add("knob", 0, k);
}
