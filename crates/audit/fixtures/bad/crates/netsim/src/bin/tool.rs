//! A binary target: printing here is sanctioned, so the
//! `println-in-lib` rule must not fire on this file.

fn main() {
    println!("binaries own stdout");
    eprintln!("and stderr");
}
