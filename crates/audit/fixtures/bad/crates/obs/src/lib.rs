//! Fixture telemetry plane: `counter_add` is the taint *sink* the
//! netsim fixture feeds, and `prune` seeds the `unstable-order` rule
//! (HashMap itself is legal outside the sim domain — the violation is
//! iterating it order-sensitively).

use std::collections::HashMap;

pub fn counter_add(name: &str, idx: u64, delta: u64) {
    let _ = (name, idx, delta);
}

pub fn prune(live: &mut HashMap<u32, u64>) {
    live.retain(|_, v| *v > 0);
}
