//! Seeded violations for the session policy: `unwrap-outside-tests`
//! must fire on `open`, and must NOT fire inside the `#[test]` below
//! (the fixture test asserts the exact finding count).

pub fn open(raw: &str) -> u16 {
    raw.parse().unwrap()
}

/// Seeds `panic-in-pub-api`: the assert lives in a private helper, so
/// the finding must carry the `begin -> ensure` reachability path.
pub fn begin(frame: usize) -> u16 {
    ensure(frame);
    1
}

fn ensure(frame: usize) {
    assert!(frame > 0, "zero-length frame");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let port: u16 = "7000".parse().unwrap();
        assert_eq!(port, 7000);
    }
}
