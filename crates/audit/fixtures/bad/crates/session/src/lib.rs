//! Seeded violations for the session policy: `unwrap-outside-tests`
//! must fire on `open`, and must NOT fire inside the `#[test]` below
//! (the fixture test asserts the exact finding count).

pub fn open(raw: &str) -> u16 {
    raw.parse().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let port: u16 = "7000".parse().unwrap();
        assert_eq!(port, 7000);
    }
}
