//! Execute one measured transfer on a [`PathCase`].

use lsl_netsim::Dur;
use lsl_session::endpoint::{SendMode, SenderState};
use lsl_session::{BulkSender, Depot, DepotConfig, Hop, LslPath, SessionId, SinkServer};
use lsl_tcp::{Net, TcpConfig};
use lsl_trace::ConnTrace;

use crate::paths::{PathCase, DEPOT_PORT, SINK_PORT};

/// Transfer mode under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The paper's baseline: one end-to-end TCP connection.
    Direct,
    /// LSL through the case's depot (synchronous session, MD5 digest).
    ViaDepot,
}

/// One run's parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub size: u64,
    pub mode: Mode,
    /// RNG seed — the paper's "iteration i" is seed `base + i` here.
    pub seed: u64,
    /// Capture sender-side traces of every connection.
    pub trace: bool,
    /// Depot relay buffer bytes.
    pub relay_buf: usize,
    /// Depot per-session setup processing time (see
    /// [`DepotConfig::setup_delay`]).
    pub depot_setup_delay: Dur,
    /// TCP configuration for every connection in the run.
    pub tcp: TcpConfig,
    /// Port the depot listens on.
    pub depot_port: u16,
    /// Port the sink listens on.
    pub sink_port: u16,
}

impl RunConfig {
    /// Validated construction; see [`RunConfigBuilder`].
    pub fn builder(size: u64, mode: Mode) -> RunConfigBuilder {
        RunConfigBuilder {
            cfg: RunConfig {
                size,
                mode,
                seed: 0,
                trace: false,
                relay_buf: 256 * 1024,
                // Calibrated so session setup dominates ≲1 MB transfers
                // (Fig 5) while staying negligible for multi-MB ones.
                depot_setup_delay: Dur::from_millis(40),
                tcp: TcpConfig {
                    // Keep teardown snappy; it is outside the measured
                    // window.
                    time_wait: Dur::from_millis(1),
                    ..TcpConfig::default()
                },
                depot_port: DEPOT_PORT,
                sink_port: SINK_PORT,
            },
        }
    }

    #[deprecated(note = "use RunConfig::builder(size, mode).seed(seed).build()")]
    pub fn new(size: u64, mode: Mode, seed: u64) -> RunConfig {
        RunConfig::builder(size, mode).seed(seed).build()
    }

    pub fn with_trace(mut self) -> RunConfig {
        self.trace = true;
        self
    }
}

/// Builder for [`RunConfig`] that rejects nonsensical runs at
/// construction instead of panicking (or hanging) mid-experiment.
#[derive(Clone, Debug)]
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn trace(mut self) -> Self {
        self.cfg.trace = true;
        self
    }

    pub fn relay_buf(mut self, bytes: usize) -> Self {
        self.cfg.relay_buf = bytes;
        self
    }

    pub fn depot_setup_delay(mut self, delay: Dur) -> Self {
        self.cfg.depot_setup_delay = delay;
        self
    }

    pub fn tcp(mut self, tcp: TcpConfig) -> Self {
        self.cfg.tcp = tcp;
        self
    }

    pub fn depot_port(mut self, port: u16) -> Self {
        self.cfg.depot_port = port;
        self
    }

    pub fn sink_port(mut self, port: u16) -> Self {
        self.cfg.sink_port = port;
        self
    }

    /// Validate and produce the config.
    ///
    /// # Panics
    ///
    /// On configurations that cannot produce a data point: zero transfer
    /// size, a zero-byte relay buffer, or depot and sink sharing a port
    /// (ambiguous when they share a host in custom cases).
    pub fn build(self) -> RunConfig {
        assert!(self.cfg.size > 0, "transfer size must be non-zero");
        assert!(
            self.cfg.relay_buf > 0,
            "depot relay buffer must be non-zero (a 0-byte buffer can never relay)"
        );
        assert!(
            self.cfg.depot_port != self.cfg.sink_port,
            "depot and sink ports must differ"
        );
        self.cfg
    }
}

/// Outcome of one run.
#[derive(Debug)]
pub struct RunResult {
    /// Wall-clock seconds from connection initiation to the sink holding
    /// the complete, verified stream (the paper's measurement).
    pub duration_s: f64,
    /// Payload goodput in bits/s.
    pub goodput_bps: f64,
    /// Sender-side trace of the first (or only) connection.
    pub trace_first: Option<ConnTrace>,
    /// Sender-side trace of the depot's downstream sublink (LSL only).
    pub trace_second: Option<ConnTrace>,
    /// Total retransmitted segments across captured traces.
    pub retransmissions: usize,
    /// Digest verification (LSL runs).
    pub digest_ok: Option<bool>,
}

/// Run one transfer to completion. Panics on any failure — an experiment
/// that cannot complete is a setup bug, not a data point.
pub fn run_transfer(case: &PathCase, cfg: &RunConfig) -> RunResult {
    let mut net = Net::new(case.topo.into_sim(cfg.seed));

    let mut depot = match cfg.mode {
        Mode::ViaDepot => Some(Depot::new(
            &mut net,
            case.depot,
            DepotConfig {
                port: cfg.depot_port,
                relay_buf: cfg.relay_buf,
                tcp: cfg.tcp.clone(),
                setup_delay: cfg.depot_setup_delay,
                trace_downstream: cfg.trace.then(|| "sublink2".to_string()),
            },
        )),
        Mode::Direct => None,
    };
    let mut sink = SinkServer::new(
        &mut net,
        case.dst,
        cfg.sink_port,
        cfg.mode == Mode::ViaDepot,
        cfg.tcp.clone(),
    );
    let (path, send_mode, label) = match cfg.mode {
        Mode::Direct => (
            LslPath::direct(Hop::new(case.dst, cfg.sink_port)),
            SendMode::DirectTcp,
            "direct",
        ),
        Mode::ViaDepot => (
            LslPath::via(
                vec![Hop::new(case.depot, cfg.depot_port)],
                Hop::new(case.dst, cfg.sink_port),
            ),
            SendMode::lsl(),
            "sublink1",
        ),
    };
    let mut sender = BulkSender::start(
        &mut net,
        case.src,
        &path,
        SessionId(cfg.seed as u128 + 1),
        cfg.size,
        send_mode,
        cfg.tcp.clone(),
        cfg.trace.then_some(label),
        None,
    );
    let started = sender.started_at;

    while let Some(ev) = net.poll() {
        if sender.handle(&mut net, &ev).consumed() {
            continue;
        }
        if sink.handle(&mut net, &ev).consumed() {
            continue;
        }
        if let Some(d) = &mut depot {
            let _ = d.handle(&mut net, &ev);
        }
    }

    assert_eq!(
        sender.state(),
        SenderState::Done,
        "sender failed on {} seed {} size {}",
        case.name,
        cfg.seed,
        cfg.size
    );
    let outcomes = sink.take_outcomes();
    assert_eq!(outcomes.len(), 1, "expected exactly one transfer outcome");
    let out = &outcomes[0];
    assert!(
        out.ok(),
        "transfer failed on {} seed {}: {:?}",
        case.name,
        cfg.seed,
        out.status
    );
    assert_eq!(out.bytes, cfg.size, "sink byte count mismatch");

    let duration_s = (out.completed_at - started).as_secs_f64();
    let trace_first = cfg.trace.then(|| net.take_trace(sender.sock())).flatten();
    let trace_second = depot
        .as_mut()
        .and_then(|d| d.take_traces().into_iter().next());
    let retransmissions = trace_first
        .iter()
        .chain(trace_second.iter())
        .map(lsl_trace::retransmissions)
        .sum();

    RunResult {
        duration_s,
        goodput_bps: cfg.size as f64 * 8.0 / duration_s,
        trace_first,
        trace_second,
        retransmissions,
        digest_ok: out.digest_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::case1;

    #[test]
    fn direct_run_completes_with_trace() {
        let case = case1();
        let r = run_transfer(
            &case,
            &RunConfig::builder(256 * 1024, Mode::Direct)
                .seed(1)
                .trace()
                .build(),
        );
        assert!(r.duration_s > 0.0);
        assert!(r.goodput_bps > 0.0);
        let t = r.trace_first.as_ref().expect("trace captured");
        assert!(!t.is_empty());
        assert!(r.trace_second.is_none());
        assert_eq!(r.digest_ok, None);
    }

    #[test]
    fn lsl_run_captures_both_sublinks() {
        let case = case1();
        let r = run_transfer(
            &case,
            &RunConfig::builder(256 * 1024, Mode::ViaDepot)
                .seed(1)
                .trace()
                .build(),
        );
        assert_eq!(r.digest_ok, Some(true));
        let t1 = r.trace_first.expect("sublink1 trace");
        let t2 = r.trace_second.expect("sublink2 trace");
        assert_eq!(t1.label, "sublink1");
        assert_eq!(t2.label, "sublink2");
        // Both sublinks carried the payload.
        let g1 = lsl_trace::seq_growth(&t1);
        let g2 = lsl_trace::seq_growth(&t2);
        assert!(g1.last_y().unwrap() >= 256.0 * 1024.0);
        assert!(g2.last_y().unwrap() >= 256.0 * 1024.0);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let case = case1();
        let a = run_transfer(
            &case,
            &RunConfig::builder(512 * 1024, Mode::ViaDepot)
                .seed(7)
                .build(),
        );
        let b = run_transfer(
            &case,
            &RunConfig::builder(512 * 1024, Mode::ViaDepot)
                .seed(7)
                .build(),
        );
        assert_eq!(a.duration_s, b.duration_s);
    }
}
