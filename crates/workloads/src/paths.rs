//! The four calibrated experiment topologies.

use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Topology, TopologyBuilder};

/// Sink listening port in every case.
pub const SINK_PORT: u16 = 5001;
/// Depot listening port in every case.
pub const DEPOT_PORT: u16 = 7001;

/// One experiment setting: a topology plus the roles within it.
#[derive(Clone)]
pub struct PathCase {
    pub name: &'static str,
    pub topo: Topology,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Host running the `lsd` depot.
    pub depot: NodeId,
}

/// Case 1 — UCSB → UIUC with the depot near the Denver POP.
///
/// Calibration targets (paper Fig 3): sublink RTTs ≈ 28–31 ms each,
/// direct RTT ≈ 55 ms, sublink sum ≈ +6 ms over direct; random loss on
/// the two backbone legs so 64 MB direct transfers land near 13 Mbit/s
/// and LSL near 19 Mbit/s (Fig 6's ≈60% gain).
pub fn case1() -> PathCase {
    let mut b = TopologyBuilder::new();
    let ucsb = b.node("ucsb");
    let la = b.node("pop-la");
    let denver = b.node("pop-denver");
    let uiuc = b.node("uiuc");
    let depot = b.node("depot-denver");

    // Campus access links.
    b.duplex(
        ucsb,
        la,
        LinkSpec::new(100_000_000, Dur::from_millis(1)).with_queue_bytes(2 << 20),
    );
    // Abilene backbone legs (OC-12-ish shares), with random loss.
    b.duplex(
        la,
        denver,
        LinkSpec::new(622_000_000, Dur::from_millis(13)).with_loss(LossModel::bernoulli(9e-5)),
    );
    b.duplex(
        denver,
        uiuc,
        LinkSpec::new(622_000_000, Dur::from_millis(13)).with_loss(LossModel::bernoulli(9e-5)),
    );
    // Depot hangs off the Denver POP by a short LAN hop; the extra
    // 1.5 ms each way produces Fig 3's ≈6 ms cascade RTT overhead.
    b.duplex(
        denver,
        depot,
        LinkSpec::new(1_000_000_000, Dur::from_micros(1500)),
    );

    PathCase {
        name: "case1-ucsb-uiuc-via-denver",
        topo: b.build(),
        src: ucsb,
        dst: uiuc,
        depot,
    }
}

/// Case 2 — UCSB → UF with the depot near the Houston POP.
///
/// Calibration targets (paper Figs 4, 7, 8): direct RTT ≈ 63 ms, sublink
/// sum ≈ +20 ms (the paper attributes most of it to depot load; we model
/// it as a longer depot spur), plateaus ≈ 35 vs 50 Mbit/s at 128 MB.
pub fn case2() -> PathCase {
    let mut b = TopologyBuilder::new();
    let ucsb = b.node("ucsb");
    let la = b.node("pop-la");
    let houston = b.node("pop-houston");
    let uf = b.node("uf");
    let depot = b.node("depot-houston");

    // Campus edge buffers sized ≈ the 8 MB socket windows the paper's
    // hosts were tuned to, so the access hop doesn't drop slow-start
    // bursts that the real path absorbed.
    b.duplex(
        ucsb,
        la,
        LinkSpec::new(200_000_000, Dur::from_millis(1)).with_queue_bytes(2 << 20),
    );
    b.duplex(
        la,
        houston,
        LinkSpec::new(622_000_000, Dur::from_millis(15)).with_loss(LossModel::bernoulli(2.2e-5)),
    );
    b.duplex(
        houston,
        uf,
        LinkSpec::new(622_000_000, Dur::from_millis(14)).with_loss(LossModel::bernoulli(2.2e-5)),
    );
    // A longer spur: the "+20 ms" seen in Fig 4.
    b.duplex(
        houston,
        depot,
        LinkSpec::new(1_000_000_000, Dur::from_micros(5000)).with_queue_bytes(2 << 20),
    );

    PathCase {
        name: "case2-ucsb-uf-via-houston",
        topo: b.build(),
        src: ucsb,
        dst: uf,
        depot,
    }
}

/// Case 3 — UTK → UCSB where the receiver sits behind an 802.11b
/// wireless hop; the depot is at the campus wired/wireless edge.
///
/// Calibration targets (paper Figs 9, 10): sublink 1 (wired, UTK→edge)
/// RTT ≈ 100 ms and is the bottleneck; the wireless hop is ≈5 Mbit/s
/// effective with bursty (Gilbert–Elliott) loss; LSL gains ≈13% on
/// large transfers.
pub fn case3() -> PathCase {
    let mut b = TopologyBuilder::new();
    let utk = b.node("utk");
    let backbone = b.node("backbone");
    let edge = b.node("ucsb-edge");
    let mobile = b.node("ucsb-mobile");

    b.duplex(
        utk,
        backbone,
        LinkSpec::new(100_000_000, Dur::from_millis(2)),
    );
    b.duplex(
        backbone,
        edge,
        LinkSpec::new(155_000_000, Dur::from_millis(47)).with_loss(LossModel::bernoulli(1.2e-4)),
    );
    // 802.11b: ~5 Mbit/s effective goodput, short RTT, bursty fades.
    // Fade frequency/depth calibrated so direct TCP (102 ms RTT) is
    // hurt but not crippled: Fig 10's gain is modest, not multiples.
    b.duplex(
        edge,
        mobile,
        LinkSpec::new(5_000_000, Dur::from_millis(2))
            .with_loss(LossModel::gilbert_elliott(0.002, 0.25, 0.0002, 0.05))
            .with_queue_bytes(64 * 1024),
    );

    PathCase {
        name: "case3-utk-ucsb-wireless",
        topo: b.build(),
        src: utk,
        dst: mobile,
        depot: edge,
    }
}

/// Case 4 — UCSB → OSU via Denver: the steady-state study (Figs 28, 29)
/// with 120 iterations per size up to 512 MB. Like case 1 with slightly
/// lower loss so direct TCP plateaus ≈20 Mbit/s and LSL ≈28 Mbit/s.
pub fn case4() -> PathCase {
    let mut b = TopologyBuilder::new();
    let ucsb = b.node("ucsb");
    let la = b.node("pop-la");
    let denver = b.node("pop-denver");
    let osu = b.node("osu");
    let depot = b.node("depot-denver");

    b.duplex(
        ucsb,
        la,
        LinkSpec::new(200_000_000, Dur::from_millis(1)).with_queue_bytes(512 << 10),
    );
    b.duplex(
        la,
        denver,
        LinkSpec::new(622_000_000, Dur::from_millis(13)).with_loss(LossModel::bernoulli(4e-5)),
    );
    b.duplex(
        denver,
        osu,
        LinkSpec::new(622_000_000, Dur::from_millis(14)).with_loss(LossModel::bernoulli(4e-5)),
    );
    b.duplex(
        denver,
        depot,
        LinkSpec::new(1_000_000_000, Dur::from_micros(1500)),
    );

    PathCase {
        name: "case4-ucsb-osu-via-denver",
        topo: b.build(),
        src: ucsb,
        dst: osu,
        depot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_build_and_route() {
        for case in [case1(), case2(), case3(), case4()] {
            let sim = case.topo.into_sim(1);
            assert!(sim.route(case.src, case.dst).is_some(), "{}", case.name);
            assert!(sim.route(case.src, case.depot).is_some());
            assert!(sim.route(case.depot, case.dst).is_some());
            assert!(sim.route(case.dst, case.src).is_some());
        }
    }

    #[test]
    fn case1_rtt_calibration() {
        // Propagation-only RTTs must sit near Fig 3's bars:
        // direct ≈ 55 ms (paper), sublinks ≈ 28-31 ms, sum ≈ direct + 6 ms.
        let c = case1();
        let direct = 2.0 * c.topo.path_prop_delay(c.src, c.dst).unwrap().as_secs_f64();
        let s1 = 2.0
            * c.topo
                .path_prop_delay(c.src, c.depot)
                .unwrap()
                .as_secs_f64();
        let s2 = 2.0
            * c.topo
                .path_prop_delay(c.depot, c.dst)
                .unwrap()
                .as_secs_f64();
        assert!((0.050..0.060).contains(&direct), "direct {direct}");
        assert!((0.025..0.033).contains(&s1), "sublink1 {s1}");
        assert!((0.025..0.033).contains(&s2), "sublink2 {s2}");
        let overhead = s1 + s2 - direct;
        assert!(
            (0.004..0.008).contains(&overhead),
            "detour overhead {overhead}"
        );
    }

    #[test]
    fn case2_rtt_calibration() {
        // Fig 4: direct ≈ 63 ms, cascade sum ≈ +20 ms.
        let c = case2();
        let direct = 2.0 * c.topo.path_prop_delay(c.src, c.dst).unwrap().as_secs_f64();
        let sum = 2.0
            * (c.topo
                .path_prop_delay(c.src, c.depot)
                .unwrap()
                .as_secs_f64()
                + c.topo
                    .path_prop_delay(c.depot, c.dst)
                    .unwrap()
                    .as_secs_f64());
        assert!((0.058..0.068).contains(&direct), "direct {direct}");
        let overhead = sum - direct;
        assert!(
            (0.015..0.025).contains(&overhead),
            "detour overhead {overhead}"
        );
    }

    #[test]
    fn case3_wired_sublink_dominates() {
        // Fig 9: sublink 1 (wired) RTT ≈ 100 ms; wireless hop is short.
        let c = case3();
        let s1 = 2.0
            * c.topo
                .path_prop_delay(c.src, c.depot)
                .unwrap()
                .as_secs_f64();
        let s2 = 2.0
            * c.topo
                .path_prop_delay(c.depot, c.dst)
                .unwrap()
                .as_secs_f64();
        assert!((0.090..0.110).contains(&s1), "wired sublink {s1}");
        assert!(s2 < 0.01, "wireless sublink {s2}");
    }
}
