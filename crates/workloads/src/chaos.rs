//! Chaos-storm soak: seeded random fault storms against the recovering
//! failover session, with a machine-checked per-run contract.
//!
//! Each seed expands (via [`FaultStormGen`]) into a storm of 1–5 fault
//! atoms — link flaps, depot crashes (possibly permanent), client-host
//! RSTs — thrown at the two-depot [`failover_case`] topology while a
//! resumable transfer is in flight. [`run_chaos_seed`] drives the run
//! under a sim-time + event-count bound and checks the contract:
//!
//! 1. the run **terminates** within the bound (no hang, no wedge),
//! 2. the client ends in verified delivery or a typed
//!    [`SessionError`](lsl_session::SessionError) — `Done` without a
//!    digest-verified sink outcome is a violation,
//! 3. **no verified block is ever re-sent**: every resumed attempt's
//!    granted offset is at or above the verified boundary established by
//!    attempts that finished before it was accepted,
//! 4. the runtime invariant auditor is clean (under `--features
//!    invariants`).
//!
//! [`run_chaos_campaign`] fans seeds out through
//! [`run_campaign`](crate::campaign::run_campaign) — output is
//! byte-identical whatever the job count. A failing storm shrinks to a
//! minimal reproduction with [`shrink_storm`], rendered as a paste-able
//! [`FaultPlan`](lsl_netsim::FaultPlan) drill by [`ChaosRun::drill`].

use std::collections::BTreeSet;
use std::fmt::Write as _;

use lsl_netsim::{Dur, FaultStormGen, LinkId, StormAtom, StormPlan, StormSpec, Time};
use lsl_session::endpoint::SendMode;
use lsl_session::{
    ClientState, Depot, DepotConfig, SessionClient, SessionEvent, SessionId, SinkServer,
    TransferOutcome, RESUME_BLOCK,
};
use lsl_tcp::Net;

use crate::campaign::run_campaign;
use crate::faults::{failover_case, FailoverCase, FaultRunConfig};
use crate::paths::{DEPOT_PORT, SINK_PORT};

/// Soak parameters shared by every seed of a campaign.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Transfer size per run, bytes.
    pub size: u64,
    /// Sim-time bound: a client still non-terminal past this is a hang.
    pub time_bound: Dur,
    /// Event-count bound: a livelock backstop for runs that churn
    /// without advancing meaningfully in sim time.
    pub max_events: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            size: 1 << 20,
            // Worst honest case is a few seconds of backoff ladders and
            // SYN retries across three routes; 60 s of sim time only
            // trips on genuine hangs.
            time_bound: Dur::from_secs(60),
            max_events: 5_000_000,
        }
    }
}

/// The storm envelope for the failover topology: every link is a flap
/// target, both depots are crash targets (sometimes permanently), and
/// the client host is the RST target. Faults land inside the first
/// 1.5 s — mid-stream for the default transfer size.
pub fn chaos_spec(case: &FailoverCase) -> StormSpec {
    let sim = case.topo.clone().into_sim(0);
    StormSpec::new(Dur::from_millis(1500))
        .with_links((0..sim.num_links()).map(|i| LinkId(i as u32)).collect())
        .with_crash_nodes(vec![case.depot_a, case.depot_b])
        .with_rst_nodes(vec![case.src])
        .with_atoms(1, 5)
        .with_max_outage(Dur::from_millis(800))
}

/// One contract breach. `Debug` output is stable — it feeds the campaign
/// fingerprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosViolation {
    /// The sim-time or event-count bound tripped before the client
    /// reached a terminal state.
    Hang { at: Time, events: u64 },
    /// The network quiesced with the client still non-terminal: the
    /// recovery layer lost track of its own session.
    Wedged { state: ClientState },
    /// The client claims `Done` but no sink outcome is a digest-verified
    /// complete delivery.
    NoVerifiedDelivery,
    /// A resumed attempt was granted an offset below a verified boundary
    /// established before it was accepted — a verified block would be
    /// re-sent on the wire.
    ResumeRegression {
        /// Index into [`ChaosRun::outcomes`] of the offending attempt.
        outcome: usize,
        resume_offset: u64,
        floor_blocks: u64,
    },
    /// The runtime invariant auditor recorded violations during the run
    /// (only reachable under `--features invariants`).
    Invariants { count: usize },
    /// Striped runs only: the sink granted a stripe range containing
    /// already-verified blocks — a verified block was re-sent on the
    /// wire. The counter is [`SinkServer`]'s `stripe_regrants`; the
    /// striped contract demands it stay zero for every seed.
    StripeRegrant { regrants: u64 },
    /// Striped runs only: the session claims `Done` but the sink's
    /// block ledger certified fewer blocks than the stream holds.
    PartialCertification { certified: u64, expected: u64 },
}

/// One seed's run: the storm it drew, what the session did, and every
/// contract breach (empty = the seed passed).
#[derive(Debug)]
pub struct ChaosRun {
    pub seed: u64,
    pub storm: StormPlan,
    pub state: ClientState,
    pub route_used: usize,
    pub timeline: Vec<(Time, SessionEvent)>,
    pub outcomes: Vec<TransferOutcome>,
    /// Session start to terminal state (or to the bound, on a hang),
    /// seconds of sim time.
    pub duration_s: f64,
    /// Events dispatched before the run ended.
    pub events: u64,
    pub violations: Vec<ChaosViolation>,
    /// Telemetry captured while the seed ran: session lifecycle spans,
    /// depot relay occupancy, tcp/netsim metrics. Deterministic — the
    /// fingerprint folds in its digest, and a failing seed's report
    /// feeds the flight recorder / perfetto exporters.
    pub obs: lsl_obs::ObsReport,
}

impl ChaosRun {
    /// Did the run satisfy the whole contract?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn completed(&self) -> bool {
        self.state == ClientState::Done
    }

    /// The distinct fault kinds this storm lowered to (for coverage
    /// accounting across a campaign).
    pub fn kinds(&self) -> BTreeSet<&'static str> {
        self.storm.kinds()
    }

    /// A paste-able [`FaultPlan`](lsl_netsim::FaultPlan) builder chain
    /// reproducing this run's storm.
    pub fn drill(&self) -> String {
        self.storm.drill()
    }

    /// Canonical rendering — storm, timeline, outcomes, verdicts — for
    /// byte-identical determinism comparisons across job counts.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "chaos seed {} atoms {}",
            self.seed,
            self.storm.atoms.len()
        );
        for a in &self.storm.atoms {
            let _ = writeln!(s, "  atom {a:?}");
        }
        for (t, ev) in &self.timeline {
            let _ = writeln!(s, "{t:?} {ev:?}");
        }
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "outcome {:?} {:?} bytes={} digest={:?} verified={} resume_at={} at={:?}",
                o.session,
                o.status,
                o.bytes,
                o.digest_ok,
                o.verified_blocks,
                o.resume_offset,
                o.completed_at
            );
        }
        let _ = writeln!(
            s,
            "state {:?} route {} events {} violations {:?}",
            self.state, self.route_used, self.events, self.violations
        );
        let _ = writeln!(
            s,
            "obs spans {} digest {:016x}",
            self.obs.spans.len(),
            self.obs.digest()
        );
        s
    }
}

/// Run one seed: generate its storm, drive it, check the contract.
pub fn run_chaos_seed(cfg: &ChaosConfig, seed: u64) -> ChaosRun {
    let case = failover_case();
    let storm = FaultStormGen::new(chaos_spec(&case)).generate(seed);
    run_chaos_storm(&case, cfg, storm)
}

/// Run an explicit storm (the shrinker re-enters here with atom
/// subsets). The sim seed is the storm's seed, so a shrunk reproduction
/// replays the exact packet-level timing of the original run.
pub fn run_chaos_storm(case: &FailoverCase, cfg: &ChaosConfig, storm: StormPlan) -> ChaosRun {
    // Reset the (thread-local) invariant registry so a prior seed on
    // this worker thread can't leak violations into our verdict.
    #[cfg(feature = "invariants")]
    drop(lsl_netsim::invariants::take());

    // The whole seed runs under a clean thread-local obs recorder; the
    // captured report rides on the ChaosRun and extends the fingerprint.
    let (mut run, obs) = lsl_obs::recorded(|| run_chaos_storm_inner(case, cfg, storm));
    run.obs = obs;
    run
}

fn run_chaos_storm_inner(case: &FailoverCase, cfg: &ChaosConfig, storm: StormPlan) -> ChaosRun {
    let run_cfg = FaultRunConfig::new(cfg.size, storm.seed, storm.to_fault_plan());
    let mut sim = case.topo.clone().into_sim(run_cfg.seed);
    sim.install_faults(run_cfg.plan.clone());
    let mut net = Net::new(sim);

    let depot_cfg = DepotConfig::builder()
        .port(DEPOT_PORT)
        .tcp(run_cfg.tcp.clone())
        .setup_delay(Dur::from_millis(5))
        .build();
    let mut depots = vec![
        Depot::new(&mut net, case.depot_a, depot_cfg.clone()),
        Depot::new(&mut net, case.depot_b, depot_cfg),
    ];
    let mut sink = SinkServer::new(&mut net, case.dst, SINK_PORT, true, run_cfg.tcp.clone());
    if let Some(d) = run_cfg.sink_idle {
        sink = sink.with_idle_timeout(d);
    }

    let mut client = SessionClient::start(
        &mut net,
        case.src,
        case.plan(),
        SessionId(0xc4a0 + run_cfg.seed as u128),
        run_cfg.size,
        SendMode::lsl(),
        run_cfg.tcp.clone(),
        run_cfg.recovery.clone(),
        None,
    );

    let deadline = Time::ZERO + cfg.time_bound;
    let mut outcomes: Vec<TransferOutcome> = Vec::new();
    let mut events: u64 = 0;
    let mut hung = false;
    while let Some(ev) = net.poll() {
        events += 1;
        if net.now() > deadline || events > cfg.max_events {
            hung = true;
            break;
        }
        let consumed =
            client.handle(&mut net, &ev).consumed() || sink.handle(&mut net, &ev).consumed();
        if !consumed {
            for d in &mut depots {
                if d.handle(&mut net, &ev).consumed() {
                    break;
                }
            }
        }
        for o in sink.take_outcomes() {
            if o.session == Some(client.session()) {
                client.on_outcome(&mut net, &o);
            }
            outcomes.push(o);
        }
        // Terminal client: the contract is decided; draining residual
        // fault repairs would only pad the event count.
        if client.is_done() {
            break;
        }
    }

    let state = client.state();
    let ended_at = client.finished_at.unwrap_or_else(|| net.now());
    #[cfg(feature = "invariants")]
    let invariant_count = lsl_netsim::invariants::take().len();
    #[cfg(not(feature = "invariants"))]
    let invariant_count = 0;
    let violations = check_contract(hung, events, net.now(), state, &outcomes, invariant_count);
    // End-of-run link telemetry (queue HWMs, drop tallies) before the
    // recorder is drained by our caller.
    net.sim().record_obs_link_metrics();

    ChaosRun {
        seed: storm.seed,
        storm,
        state,
        route_used: client.route_index(),
        timeline: client.take_events(),
        outcomes,
        duration_s: (ended_at - client.started_at).as_secs_f64(),
        events,
        violations,
        obs: lsl_obs::ObsReport::default(),
    }
}

/// The machine-checked contract (the caller drains the thread-local
/// invariant registry and passes the count in). Shared with the routing
/// campaign, which runs the same session machinery under forecast-driven
/// route selection.
pub(crate) fn check_contract(
    hung: bool,
    events: u64,
    now: Time,
    state: ClientState,
    outcomes: &[TransferOutcome],
    invariant_count: usize,
) -> Vec<ChaosViolation> {
    let mut v = Vec::new();
    if invariant_count > 0 {
        v.push(ChaosViolation::Invariants {
            count: invariant_count,
        });
    }
    if hung {
        v.push(ChaosViolation::Hang { at: now, events });
        return v;
    }
    let terminal = matches!(state, ClientState::Done | ClientState::Failed(_));
    if !terminal {
        v.push(ChaosViolation::Wedged { state });
        return v;
    }
    if state == ClientState::Done && !outcomes.iter().any(|o| o.ok() && o.digest_ok == Some(true)) {
        v.push(ChaosViolation::NoVerifiedDelivery);
    }
    // No-re-send check: an attempt accepted after some prior attempt
    // ended with `n` verified blocks must be granted at least
    // `n * RESUME_BLOCK`. Pre-header failures (session None) never
    // negotiated resume and are exempt.
    for (i, o) in outcomes.iter().enumerate() {
        if o.session.is_none() {
            continue;
        }
        let floor_blocks = outcomes
            .iter()
            .filter(|p| p.session.is_some() && p.completed_at <= o.accepted_at)
            .map(|p| p.verified_blocks)
            .max()
            .unwrap_or(0);
        if o.resume_offset < floor_blocks * RESUME_BLOCK {
            v.push(ChaosViolation::ResumeRegression {
                outcome: i,
                resume_offset: o.resume_offset,
                floor_blocks,
            });
        }
    }
    v
}

/// Run seeds `0..n` through the failover topology. Fan-out goes through
/// [`run_campaign`]: results arrive in seed order and are byte-identical
/// for any `jobs` value.
pub fn run_chaos_campaign(cfg: &ChaosConfig, n: usize, jobs: usize) -> Vec<ChaosRun> {
    run_campaign(n, jobs, |i| run_chaos_seed(cfg, i as u64))
}

/// Greedy delta-debugging: shrink a failing storm to a 1-minimal atom
/// subset — one from which no single atom can be removed while `fails`
/// still holds. `fails` must hold for `atoms` itself; atoms are whole
/// failure+repair pairs, so every subset is a valid schedule.
pub fn shrink_storm(atoms: &[StormAtom], fails: impl Fn(&[StormAtom]) -> bool) -> Vec<StormAtom> {
    let mut cur: Vec<StormAtom> = atoms.to_vec();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if fails(&cand) {
                cur = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            break;
        }
    }
    cur
}

/// Shrink a failing [`ChaosRun`] by re-running atom subsets under the
/// same seed, and render the minimal storm as a paste-able drill.
pub fn shrink_chaos_run(cfg: &ChaosConfig, run: &ChaosRun) -> StormPlan {
    let case = failover_case();
    let seed = run.seed;
    let minimal = shrink_storm(&run.storm.atoms, |atoms| {
        let storm = StormPlan {
            seed,
            atoms: atoms.to_vec(),
        };
        !run_chaos_storm(&case, cfg, storm).ok()
    });
    StormPlan {
        seed,
        atoms: minimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ChaosConfig {
        ChaosConfig {
            size: 256 * 1024,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn calm_seed_satisfies_contract() {
        let case = failover_case();
        let storm = StormPlan {
            seed: 7,
            atoms: Vec::new(),
        };
        let r = run_chaos_storm(&case, &quick_cfg(), storm);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.completed(), "state {:?}", r.state);
        assert_eq!(r.route_used, 0);
    }

    #[test]
    fn chaos_spec_covers_every_target_class() {
        let case = failover_case();
        let spec = chaos_spec(&case);
        assert_eq!(spec.links.len(), 8, "failover topology has 8 simplex links");
        assert_eq!(spec.crash_nodes, vec![case.depot_a, case.depot_b]);
        assert_eq!(spec.rst_nodes, vec![case.src]);
    }

    #[test]
    fn hang_bound_reports_violation_not_panic() {
        let case = failover_case();
        let cfg = ChaosConfig {
            // An impossible event budget: the run trips the bound during
            // connection setup, long before the client is terminal.
            max_events: 3,
            ..quick_cfg()
        };
        let storm = StormPlan {
            seed: 1,
            atoms: Vec::new(),
        };
        let r = run_chaos_storm(&case, &cfg, storm);
        assert!(matches!(
            r.violations.as_slice(),
            [ChaosViolation::Hang { .. }]
        ));
    }

    #[test]
    fn shrinker_finds_minimal_failing_subset() {
        // Synthetic predicate: fails iff the subset still contains both
        // a crash of depot-a AND the RST atom — the flap is noise the
        // shrinker must discard.
        let case = failover_case();
        let atoms = vec![
            StormAtom::LinkFlap {
                link: case.access_links.0,
                at: Dur::from_millis(10),
                outage: Some(Dur::from_millis(50)),
            },
            StormAtom::NodeCrash {
                node: case.depot_a,
                at: Dur::from_millis(20),
                downtime: None,
            },
            StormAtom::SublinkRst {
                node: case.src,
                at: Dur::from_millis(30),
            },
        ];
        let fails = |s: &[StormAtom]| {
            s.iter()
                .any(|a| matches!(a, StormAtom::NodeCrash { node, .. } if *node == case.depot_a))
                && s.iter().any(|a| matches!(a, StormAtom::SublinkRst { .. }))
        };
        assert!(fails(&atoms));
        let minimal = shrink_storm(&atoms, fails);
        assert_eq!(minimal.len(), 2);
        assert!(fails(&minimal));
        // 1-minimality: removing either survivor breaks the predicate.
        for i in 0..minimal.len() {
            let mut cand = minimal.clone();
            cand.remove(i);
            assert!(!fails(&cand));
        }
    }
}
