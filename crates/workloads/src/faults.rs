//! Fault-injection campaign: scripted failures against a recovering
//! session.
//!
//! [`failover_case`] is a calibrated topology with **two** depot spurs
//! off the backbone POP, so a [`SessionClient`] has a real failover
//! target when its primary depot dies (the four `paths` cases are
//! single-depot and can only demonstrate degradation). A
//! [`FaultRunConfig`] pairs a transfer with a seeded
//! [`FaultPlan`]; [`run_fault_transfer`] drives client, depots, and sink
//! to quiescence and returns the typed recovery timeline.
//!
//! Three canned scenarios cover the acceptance matrix:
//!
//! * [`run_depot_crash`] — primary depot crashes mid-stream; the client
//!   must fail over to the second depot route and the sink must still
//!   verify the digest.
//! * [`run_all_depots_down`] — both depots crash; the client must
//!   degrade to the direct path and complete.
//! * [`run_access_flap`] — the shared access link flaps for longer than
//!   TCP's retry budget; the client must ride it out with reconnect
//!   backoff.
//! * [`run_sublink_rst`] — the client host's established connections are
//!   reset mid-stream; the RST cascades depot→sink, so the sink logs a
//!   typed failed attempt and the client reconnects on the same route.
//!
//! Everything here is a pure function of `(scenario, seed)`: the same
//! seed yields a byte-identical [`FaultRunResult::fingerprint`].

use lsl_netsim::{
    Dur, FaultPlan, LinkId, LinkSpec, LossModel, NodeId, Time, Topology, TopologyBuilder,
};
use lsl_session::endpoint::SendMode;
use lsl_session::{
    ClientState, Depot, DepotConfig, Hop, LslPath, RecoveryConfig, RoutePlan, SessionClient,
    SessionEvent, SessionId, SinkServer, TransferOutcome,
};
use lsl_tcp::{Net, TcpConfig};

use crate::paths::{DEPOT_PORT, SINK_PORT};

/// A topology with redundant depots: `src — pop — dst` backbone with two
/// depot spurs hanging off the POP.
#[derive(Clone)]
pub struct FailoverCase {
    pub name: &'static str,
    pub topo: Topology,
    pub src: NodeId,
    pub dst: NodeId,
    /// Primary depot (first candidate route).
    pub depot_a: NodeId,
    /// Backup depot (second candidate route).
    pub depot_b: NodeId,
    /// Both directions of the src↔POP access link — the flap target that
    /// takes *every* route down at once.
    pub access_links: (LinkId, LinkId),
}

impl FailoverCase {
    /// The typed candidate plan: primary depot, then backup. The direct
    /// path is *not* listed — [`RecoveryConfig::direct_fallback`]
    /// appends it as the route of last resort.
    pub fn plan(&self) -> RoutePlan {
        let dst = Hop::new(self.dst, SINK_PORT);
        RoutePlan::builder()
            .path(LslPath::via(vec![Hop::new(self.depot_a, DEPOT_PORT)], dst))
            .path(LslPath::via(vec![Hop::new(self.depot_b, DEPOT_PORT)], dst))
            .build()
            .expect("two single-depot cascades to one sink are always valid")
    }

    /// The per-sublink probe pairs the forecast plane measures: every
    /// distinct (src, dst) directed sublink any candidate (or the direct
    /// fallback) would ride.
    pub fn sublinks(&self) -> Vec<(NodeId, NodeId)> {
        vec![
            (self.src, self.depot_a),
            (self.depot_a, self.dst),
            (self.src, self.depot_b),
            (self.depot_b, self.dst),
            (self.src, self.dst),
        ]
    }
}

/// Build the two-depot failover topology (link parameters modeled on
/// `case1`, with enough backbone loss that the seed actually matters to
/// packet-level timing — determinism tests need seeds to be observable).
pub fn failover_case() -> FailoverCase {
    let mut b = TopologyBuilder::new();
    let src = b.node("src");
    let pop = b.node("pop");
    let dst = b.node("dst");
    let depot_a = b.node("depot-a");
    let depot_b = b.node("depot-b");

    let access_links = b.duplex(
        src,
        pop,
        LinkSpec::new(100_000_000, Dur::from_millis(1)).with_queue_bytes(2 << 20),
    );
    b.duplex(
        pop,
        dst,
        LinkSpec::new(622_000_000, Dur::from_millis(13)).with_loss(LossModel::bernoulli(2e-3)),
    );
    b.duplex(
        pop,
        depot_a,
        LinkSpec::new(1_000_000_000, Dur::from_micros(1500)),
    );
    b.duplex(
        pop,
        depot_b,
        LinkSpec::new(1_000_000_000, Dur::from_micros(2000)),
    );

    FailoverCase {
        name: "failover-two-depots",
        topo: b.build(),
        src,
        dst,
        depot_a,
        depot_b,
        access_links,
    }
}

/// One fault run's parameters: a transfer plus its fault schedule.
#[derive(Clone, Debug)]
pub struct FaultRunConfig {
    pub size: u64,
    pub seed: u64,
    pub plan: FaultPlan,
    pub recovery: RecoveryConfig,
    pub tcp: TcpConfig,
    /// Sink-side idle watchdog period. A crashed depot dies *silently*
    /// (no RST), so once the sender has handed the whole stream to its
    /// sublink only the sink can still notice the stall and emit the
    /// typed outcome that drives recovery.
    pub sink_idle: Option<Dur>,
}

impl FaultRunConfig {
    /// Defaults tuned for fault drills: an impatient TCP (a dead depot
    /// should cost seconds, not Linux's minutes of SYN retries) and a
    /// snappy watchdog so idle-dead sublinks are declared stalled fast.
    pub fn new(size: u64, seed: u64, plan: FaultPlan) -> FaultRunConfig {
        FaultRunConfig {
            size,
            seed,
            plan,
            recovery: RecoveryConfig {
                max_reconnects: 1,
                backoff_base: Dur::from_millis(200),
                backoff_cap: Dur::from_secs(2),
                progress_timeout: Some(Dur::from_millis(500)),
                max_retransfers: 2,
                direct_fallback: true,
                resume: true,
            },
            tcp: TcpConfig {
                time_wait: Dur::from_millis(1),
                max_syn_retries: 2,
                max_data_retries: 3,
                // Small enough that multi-MB transfers are still
                // mid-stream when a scheduled fault fires (a huge buffer
                // absorbs the whole stream at connect time and the
                // sender never *sees* the sublink die).
                send_buf: 256 * 1024,
                ..TcpConfig::default()
            },
            // Generous against loss-recovery silences (RTO back-off gaps
            // stay well under a second here) but far below any hang
            // bound.
            sink_idle: Some(Dur::from_secs(2)),
        }
    }

    pub fn recovery(mut self, recovery: RecoveryConfig) -> FaultRunConfig {
        self.recovery = recovery;
        self
    }
}

/// What a fault run produced: the client's terminal state, its
/// timestamped recovery timeline, and every sink-side outcome (failed
/// attempts included).
#[derive(Debug)]
pub struct FaultRunResult {
    pub state: ClientState,
    pub timeline: Vec<(Time, SessionEvent)>,
    pub outcomes: Vec<TransferOutcome>,
    /// Index into the candidate route list of the attempt that ended the
    /// session (the direct fallback is the last index).
    pub route_used: usize,
    /// Session start to terminal state, seconds.
    pub duration_s: f64,
}

impl FaultRunResult {
    pub fn completed(&self) -> bool {
        self.state == ClientState::Done
    }

    /// Did any timeline entry match?
    pub fn saw(&self, pred: impl Fn(&SessionEvent) -> bool) -> bool {
        self.timeline.iter().any(|(_, e)| pred(e))
    }

    /// The verified delivery, if the run completed.
    pub fn delivery(&self) -> Option<&TransferOutcome> {
        self.outcomes.iter().find(|o| o.ok())
    }

    /// A canonical rendering of the run — timeline and outcomes with
    /// exact timestamps — for byte-identical determinism comparisons.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (t, ev) in &self.timeline {
            let _ = writeln!(s, "{t:?} {ev:?}");
        }
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "outcome {:?} {:?} bytes={} digest={:?} verified={} resume_at={} at={:?}",
                o.session,
                o.status,
                o.bytes,
                o.digest_ok,
                o.verified_blocks,
                o.resume_offset,
                o.completed_at
            );
        }
        let _ = writeln!(s, "state {:?} route {}", self.state, self.route_used);
        s
    }
}

/// Drive one faulted transfer to its terminal state.
///
/// Events are dispatched to client, sink, then depots; after every
/// event, freshly minted sink outcomes are fed straight back to the
/// client (so recovery reacts at the outcome's own timestamp, not at
/// some later quiescence point). The network quiesces only once the
/// client is terminal — anything else is a wedged driver.
pub fn run_fault_transfer(case: &FailoverCase, cfg: &FaultRunConfig) -> FaultRunResult {
    let mut sim = case.topo.into_sim(cfg.seed);
    sim.install_faults(cfg.plan.clone());
    let mut net = Net::new(sim);

    let depot_cfg = DepotConfig::builder()
        .port(DEPOT_PORT)
        .tcp(cfg.tcp.clone())
        .setup_delay(Dur::from_millis(5))
        .build();
    let mut depots = vec![
        Depot::new(&mut net, case.depot_a, depot_cfg.clone()),
        Depot::new(&mut net, case.depot_b, depot_cfg),
    ];
    let mut sink = SinkServer::new(&mut net, case.dst, SINK_PORT, true, cfg.tcp.clone());
    if let Some(d) = cfg.sink_idle {
        sink = sink.with_idle_timeout(d);
    }

    let mut client = SessionClient::start(
        &mut net,
        case.src,
        case.plan(),
        SessionId(0xfa00 + cfg.seed as u128),
        cfg.size,
        SendMode::lsl(),
        cfg.tcp.clone(),
        cfg.recovery.clone(),
        None,
    );

    let mut outcomes: Vec<TransferOutcome> = Vec::new();
    while let Some(ev) = net.poll() {
        let consumed =
            client.handle(&mut net, &ev).consumed() || sink.handle(&mut net, &ev).consumed();
        if !consumed {
            for d in &mut depots {
                if d.handle(&mut net, &ev).consumed() {
                    break;
                }
            }
        }
        for o in sink.take_outcomes() {
            if o.session == Some(client.session()) {
                client.on_outcome(&mut net, &o);
            }
            outcomes.push(o);
        }
    }
    assert!(
        client.is_done(),
        "fault run wedged: quiesced in state {:?} with {} outcomes at t={:?}",
        client.state(),
        outcomes.len(),
        net.now()
    );

    let finished = client.finished_at.expect("terminal state has a timestamp");
    FaultRunResult {
        state: client.state(),
        route_used: client.route_index(),
        duration_s: (finished - client.started_at).as_secs_f64(),
        timeline: client.take_events(),
        outcomes,
    }
}

/// Scenario (a): the primary depot crashes mid-stream and stays down.
/// Expected: failover to the backup depot route, digest-verified
/// completion.
pub fn run_depot_crash(seed: u64) -> FaultRunResult {
    let case = failover_case();
    let plan = FaultPlan::new().node_down(Time::ZERO + Dur::from_millis(150), case.depot_a);
    run_fault_transfer(&case, &FaultRunConfig::new(2 << 20, seed, plan))
}

/// Scenario (b): both depots crash before the stream gets going.
/// Expected: degradation to the direct path, completion without any
/// depot.
pub fn run_all_depots_down(seed: u64) -> FaultRunResult {
    let case = failover_case();
    let plan = FaultPlan::new()
        .node_down(Time::ZERO + Dur::from_millis(20), case.depot_a)
        .node_down(Time::ZERO + Dur::from_millis(20), case.depot_b);
    run_fault_transfer(&case, &FaultRunConfig::new(1 << 20, seed, plan))
}

/// Scenario (c): the shared access link flaps for 2.5 s — longer than
/// the impatient TCP's retry budget, so the in-flight sublink aborts
/// mid-outage, and every route is down until the link returns. Only
/// reconnect persistence saves the session. Expected: completion after
/// backoff-paced reconnects.
pub fn run_access_flap(seed: u64) -> FaultRunResult {
    let case = failover_case();
    let outage = Dur::from_millis(2500);
    let plan = FaultPlan::new()
        .link_flap(
            Time::ZERO + Dur::from_millis(100),
            case.access_links.0,
            outage,
        )
        .link_flap(
            Time::ZERO + Dur::from_millis(100),
            case.access_links.1,
            outage,
        );
    let cfg = FaultRunConfig::new(2 << 20, seed, plan).recovery(RecoveryConfig {
        max_reconnects: 3,
        backoff_base: Dur::from_millis(300),
        backoff_cap: Dur::from_secs(2),
        progress_timeout: Some(Dur::from_millis(500)),
        max_retransfers: 2,
        direct_fallback: true,
        resume: true,
    });
    run_fault_transfer(&case, &cfg)
}

/// Scenario (d): an abrupt reset of the client host's established
/// connections mid-stream (the paper's "sublink RST"). The RST cascades
/// through the depot to the sink — which records a *typed* failed
/// attempt — while the depots stay healthy, so the client recovers by
/// reconnecting over the same primary route. Expected: completion on
/// route 0 after one reconnect, plus a `Failed(Tcp(_))` sink outcome.
pub fn run_sublink_rst(seed: u64) -> FaultRunResult {
    let case = failover_case();
    let plan = FaultPlan::new().sublink_rst(Time::ZERO + Dur::from_millis(120), case.src);
    run_fault_transfer(&case, &FaultRunConfig::new(2 << 20, seed, plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_case_routes_everywhere() {
        let c = failover_case();
        let sim = c.topo.into_sim(1);
        for (from, to) in [
            (c.src, c.dst),
            (c.src, c.depot_a),
            (c.src, c.depot_b),
            (c.depot_a, c.dst),
            (c.depot_b, c.dst),
            (c.dst, c.src),
        ] {
            assert!(sim.route(from, to).is_some(), "{}", c.name);
        }
    }

    #[test]
    fn candidate_routes_are_ranked_and_share_dst() {
        let c = failover_case();
        let plan = c.plan();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.get(0).unwrap().path.depots[0].node, c.depot_a);
        assert_eq!(plan.get(1).unwrap().path.depots[0].node, c.depot_b);
        assert_eq!(plan.dst().node, c.dst);
        assert!(!plan.has_depot_free(), "direct fallback is appended later");
    }

    #[test]
    fn no_faults_completes_on_primary_route() {
        let case = failover_case();
        let cfg = FaultRunConfig::new(1 << 20, 3, FaultPlan::new());
        let r = run_fault_transfer(&case, &cfg);
        assert!(r.completed(), "state {:?}", r.state);
        assert_eq!(r.route_used, 0, "no fault should mean no failover");
        assert!(!r.saw(|e| matches!(e, SessionEvent::SublinkDown(_))));
        let d = r.delivery().expect("verified delivery");
        assert_eq!(d.bytes, 1 << 20);
        assert_eq!(d.digest_ok, Some(true));
    }
}
