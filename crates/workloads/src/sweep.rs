//! Size sweeps with repeated iterations, as the paper runs them
//! ("10 iterations were run and the wall clock times were recorded";
//! 120 for the steady-state case 4).

use crate::campaign::run_campaign;
use crate::paths::PathCase;
use crate::runner::{run_transfer, Mode, RunConfig};

/// Aggregated result for one (size, mode) point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    pub size: u64,
    pub mode: Mode,
    pub iterations: usize,
    /// Mean goodput, bits/s.
    pub mean_bps: f64,
    /// Sample standard deviation of goodput, bits/s.
    pub std_bps: f64,
    /// Mean wall-clock duration, seconds.
    pub mean_duration_s: f64,
}

/// Run `iterations` seeded transfers at every size for the given mode.
/// Seeds are `seed_base + i` so direct and LSL runs of iteration `i` see
/// the same loss process where their packet schedules coincide.
pub fn sweep_sizes(
    case: &PathCase,
    sizes: &[u64],
    mode: Mode,
    iterations: usize,
    seed_base: u64,
) -> Vec<SweepPoint> {
    sweep_sizes_jobs(case, sizes, mode, iterations, seed_base, 1)
}

/// [`sweep_sizes`] with the `(size, iteration)` grid fanned across
/// `jobs` workers. Every run is seeded `seed_base + i` exactly as in
/// the sequential sweep, and samples are re-assembled in iteration
/// order before aggregation, so the returned points — and any `.dat`
/// rendered from them — are identical to a `jobs = 1` sweep.
pub fn sweep_sizes_jobs(
    case: &PathCase,
    sizes: &[u64],
    mode: Mode,
    iterations: usize,
    seed_base: u64,
    jobs: usize,
) -> Vec<SweepPoint> {
    // Flatten the whole grid into one campaign so workers stay busy
    // across size boundaries (the last large-size run would otherwise
    // serialize the tail of every per-size batch).
    let total = sizes.len() * iterations;
    let samples: Vec<f64> = run_campaign(total, jobs, |k| {
        let size = sizes[k / iterations.max(1)];
        let i = k % iterations.max(1);
        let cfg = RunConfig::builder(size, mode)
            .seed(seed_base + i as u64)
            .build();
        run_transfer(case, &cfg).goodput_bps
    });
    sizes
        .iter()
        .enumerate()
        .map(|(s, &size)| {
            let samples = &samples[s * iterations..(s + 1) * iterations];
            let durations: f64 = samples.iter().map(|&bps| size as f64 * 8.0 / bps).sum();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let var = if samples.len() > 1 {
                samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
            } else {
                0.0
            };
            SweepPoint {
                size,
                mode,
                iterations,
                mean_bps: mean,
                std_bps: var.sqrt(),
                mean_duration_s: durations / samples.len() as f64,
            }
        })
        .collect()
}

/// The paper's small-transfer size ladder (Figs 5, 7, 29).
pub fn small_sizes() -> Vec<u64> {
    vec![32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20]
}

/// The paper's large-transfer size ladder up to `max` (Figs 6, 8, 10, 28).
pub fn large_sizes(max: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 1u64 << 20;
    while s <= max {
        v.push(s);
        s *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::case1;

    #[test]
    fn sweep_aggregates_consistently() {
        let case = case1();
        let pts = sweep_sizes(&case, &[64 << 10, 256 << 10], Mode::Direct, 3, 10);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.iterations, 3);
            assert!(p.mean_bps > 0.0);
            assert!(p.std_bps >= 0.0);
            assert!(p.mean_duration_s > 0.0);
        }
        // Bigger transfers amortize slow start: higher goodput.
        assert!(pts[1].mean_bps > pts[0].mean_bps);
    }

    #[test]
    fn parallel_sweep_is_bitwise_identical() {
        let case = case1();
        let sizes = [32 << 10, 64 << 10, 128 << 10];
        let seq = sweep_sizes(&case, &sizes, Mode::ViaDepot, 2, 77);
        let par = sweep_sizes_jobs(&case, &sizes, Mode::ViaDepot, 2, 77, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.mean_bps.to_bits(), b.mean_bps.to_bits());
            assert_eq!(a.std_bps.to_bits(), b.std_bps.to_bits());
            assert_eq!(a.mean_duration_s.to_bits(), b.mean_duration_s.to_bits());
        }
    }

    #[test]
    fn size_ladders() {
        assert_eq!(small_sizes().len(), 6);
        let l = large_sizes(64 << 20);
        assert_eq!(l.first(), Some(&(1u64 << 20)));
        assert_eq!(l.last(), Some(&(64u64 << 20)));
        assert_eq!(l.len(), 7);
    }
}
