//! Result formatting shared by the figure binaries.

use crate::runner::Mode;
use crate::sweep::SweepPoint;

/// Render a direct-vs-LSL sweep as an aligned text table (one row per
/// size), mirroring how the paper's figures pair the two curves.
pub fn sweep_table(direct: &[SweepPoint], lsl: &[SweepPoint]) -> String {
    assert_eq!(direct.len(), lsl.len(), "paired sweeps required");
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12} {:>14} {:>14} {:>9}\n",
        "size", "direct Mbit/s", "LSL Mbit/s", "gain %"
    ));
    for (d, l) in direct.iter().zip(lsl) {
        assert_eq!(d.size, l.size);
        debug_assert_eq!(d.mode, Mode::Direct);
        debug_assert_eq!(l.mode, Mode::ViaDepot);
        let gain = (l.mean_bps / d.mean_bps - 1.0) * 100.0;
        out.push_str(&format!(
            "{:>12} {:>14.2} {:>14.2} {:>+9.1}\n",
            human_size(d.size),
            d.mean_bps / 1e6,
            l.mean_bps / 1e6,
            gain
        ));
    }
    out
}

/// Average and maximum percentage gain of LSL over direct across a
/// paired sweep — the paper's headline "+40% average / up to +75%".
pub fn gain_summary(direct: &[SweepPoint], lsl: &[SweepPoint]) -> (f64, f64) {
    assert_eq!(direct.len(), lsl.len());
    let gains: Vec<f64> = direct
        .iter()
        .zip(lsl)
        .map(|(d, l)| (l.mean_bps / d.mean_bps - 1.0) * 100.0)
        .collect();
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    let max = gains.iter().fold(f64::MIN, |a, &b| a.max(b));
    (avg, max)
}

/// `32K`, `4M`, `1G`-style sizes.
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 30 && bytes.is_multiple_of(1 << 30) {
        format!("{}G", bytes >> 30)
    } else if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(size: u64, mode: Mode, mbps: f64) -> SweepPoint {
        SweepPoint {
            size,
            mode,
            iterations: 1,
            mean_bps: mbps * 1e6,
            std_bps: 0.0,
            mean_duration_s: 1.0,
        }
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(32 << 10), "32K");
        assert_eq!(human_size(4 << 20), "4M");
        assert_eq!(human_size(1 << 30), "1G");
        assert_eq!(human_size(1500), "1500");
    }

    #[test]
    fn table_and_summary() {
        let d = vec![
            pt(1 << 20, Mode::Direct, 10.0),
            pt(2 << 20, Mode::Direct, 12.0),
        ];
        let l = vec![
            pt(1 << 20, Mode::ViaDepot, 14.0),
            pt(2 << 20, Mode::ViaDepot, 21.0),
        ];
        let t = sweep_table(&d, &l);
        assert!(t.contains("1M"));
        assert!(t.contains("+40.0"));
        assert!(t.contains("+75.0"));
        let (avg, max) = gain_summary(&d, &l);
        assert!((avg - 57.5).abs() < 1e-9);
        assert!((max - 75.0).abs() < 1e-9);
    }
}
