//! Parallel campaign executor: fan independent simulation runs across
//! worker threads without giving up deterministic output.
//!
//! Every experiment in this workspace is a pure function of its
//! `RunConfig` — the simulator is seeded per run (`seed = base + i`)
//! and shares no mutable state between runs — so a campaign of N runs
//! is embarrassingly parallel. The executor here is a plain work
//! queue over scoped std threads (no external dependencies): workers
//! claim indices from an atomic counter, compute, and record
//! `(index, result)` pairs locally; after the scope joins, results are
//! merged **by index**, so the returned vector is identical — element
//! for element — to what a sequential loop would have produced. Any
//! `.dat` file rendered from it is therefore byte-identical whatever
//! the job count.
//!
//! This module is the one place in `lsl-workloads` allowed to touch
//! `std::thread`: it is experiment-harness plumbing, not simulation
//! semantics, and `lsl-audit`'s `thread-spawn` rule encodes exactly
//! that boundary (sim-domain crates may not spawn threads; this file
//! is the named exemption).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: `LSL_JOBS` if set to a positive integer,
/// otherwise the machine's available parallelism, otherwise 1.
pub fn default_jobs() -> usize {
    if let Some(v) = std::env::var_os("LSL_JOBS") {
        if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `task(0..n)` across `jobs` workers and return the results in
/// index order — exactly the vector `(0..n).map(task).collect()` would
/// produce. `jobs <= 1` runs sequentially on the calling thread.
///
/// `task` must be a pure function of its index (each run builds its own
/// simulator from its own seed); the executor guarantees order of the
/// *output*, not order of *execution*.
pub fn run_campaign<T, F>(n: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, task(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("campaign worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("campaign index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_campaign(23, 1, |i| i * i + 7);
        let par = run_campaign(23, 4, |i| i * i + 7);
        assert_eq!(seq, par);
        assert_eq!(seq[5], 32);
    }

    #[test]
    fn more_jobs_than_items() {
        assert_eq!(run_campaign(3, 16, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_campaign(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_campaign(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn output_order_is_index_order_not_completion_order() {
        // Make early indices slow so later ones finish first under
        // parallel execution; the result must still be in index order.
        let out = run_campaign(8, 4, |i| {
            if i < 2 {
                // Busy-work, not a sleep: keep the harness deterministic
                // in what it computes even though scheduling is not.
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
            }
            i as u64
        });
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
