//! Striped-session soak: RAIL-style multi-cascade transfers under fault
//! storms, with the zero-verified-resend guarantee machine-checked.
//!
//! [`striped_case`] extends the two-depot failover topology with a third
//! depot spur, so a [`StripedSession`] can open three concurrent
//! cascades that all cross the lossy 622 Mb/s backbone. Each cascade's
//! TCP connection is Mathis-limited by that loss, so striping buys real
//! aggregate throughput — the paper's RAIL argument — while the 100 Mb/s
//! access link stays uncongested.
//!
//! [`run_striped_seed`] draws a background storm (link flaps, depot
//! crashes, client RSTs) and **always appends a targeted permanent kill
//! of depot `seed % 3` mid-transfer**, so every seed exercises cascade
//! death while blocks are in flight. The per-run contract extends the
//! chaos contract:
//!
//! 1. the run terminates within the sim-time/event bounds (no hang, no
//!    wedge),
//! 2. `Done` means the sink's block ledger certified *every* block of
//!    the stream (not merely some digest-verified attempt),
//! 3. **no verified block is ever re-sent**: the sink counts every
//!    granted stripe range that still contained a verified block
//!    ([`SinkServer::stripe_regrants`]); the contract demands the
//!    counter stay **zero** for every seed. Grant narrowing
//!    (`skip_verified`) makes this structural — re-striped and
//!    redundantly dispatched chunks are granted only their unverified
//!    suffix,
//! 4. the runtime invariant auditor is clean (under `--features
//!    invariants`).
//!
//! [`striped_vs_single`] runs the same calm seed striped and degraded
//! (`max_cascades = 1`, which delegates to the plain
//! [`SessionClient`](lsl_session::SessionClient) verbatim) for the
//! throughput comparison the bench gate enforces.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use lsl_netsim::{
    Dur, FaultStormGen, LinkId, LinkSpec, LossModel, NodeId, StormAtom, StormPlan, StormSpec, Time,
    Topology, TopologyBuilder,
};
use lsl_session::{
    stream_blocks, ClientState, Depot, DepotConfig, Hop, LaneStat, LslPath, RecoveryConfig,
    RoutePlan, SessionEvent, SessionId, SinkServer, StripeConfig, StripedSession, TransferOutcome,
};
use lsl_tcp::Net;

use crate::campaign::run_campaign;
use crate::chaos::ChaosViolation;
use crate::faults::FaultRunConfig;
use crate::paths::{DEPOT_PORT, SINK_PORT};

/// A topology with three depot spurs off the backbone POP — enough
/// distinct single-depot cascades for a three-wide stripe plus failover
/// headroom.
#[derive(Clone)]
pub struct StripedCase {
    pub name: &'static str,
    pub topo: Topology,
    pub src: NodeId,
    pub dst: NodeId,
    /// Depot spurs in candidate-rank order (a is fastest).
    pub depots: [NodeId; 3],
    /// Both directions of the src↔POP access link, the flap target that
    /// takes every cascade down at once.
    pub access_links: (LinkId, LinkId),
}

impl StripedCase {
    /// The typed candidate plan: one single-depot cascade per spur, in
    /// spur order. The direct path is not listed —
    /// [`RecoveryConfig::direct_fallback`] appends it as the failover
    /// route of last resort, exactly as for the single client.
    pub fn plan(&self) -> RoutePlan {
        let dst = Hop::new(self.dst, SINK_PORT);
        let mut b = RoutePlan::builder();
        for d in self.depots {
            b = b.path(LslPath::via(vec![Hop::new(d, DEPOT_PORT)], dst));
        }
        b.build()
            .expect("three single-depot cascades to one sink are always valid")
    }
}

/// Build the three-depot striping topology: the failover case's
/// `src — pop — dst` backbone (100 Mb/s access, lossy 622 Mb/s core)
/// with 1 Gb/s depot spurs at 1.5/2/2.5 ms.
pub fn striped_case() -> StripedCase {
    let mut b = TopologyBuilder::new();
    let src = b.node("src");
    let pop = b.node("pop");
    let dst = b.node("dst");
    let depot_a = b.node("depot-a");
    let depot_b = b.node("depot-b");
    let depot_c = b.node("depot-c");

    let access_links = b.duplex(
        src,
        pop,
        LinkSpec::new(100_000_000, Dur::from_millis(1)).with_queue_bytes(2 << 20),
    );
    b.duplex(
        pop,
        dst,
        LinkSpec::new(622_000_000, Dur::from_millis(13)).with_loss(LossModel::bernoulli(2e-3)),
    );
    b.duplex(
        pop,
        depot_a,
        LinkSpec::new(1_000_000_000, Dur::from_micros(1500)),
    );
    b.duplex(
        pop,
        depot_b,
        LinkSpec::new(1_000_000_000, Dur::from_micros(2000)),
    );
    b.duplex(
        pop,
        depot_c,
        LinkSpec::new(1_000_000_000, Dur::from_micros(2500)),
    );

    StripedCase {
        name: "striped-three-depots",
        topo: b.build(),
        src,
        dst,
        depots: [depot_a, depot_b, depot_c],
        access_links,
    }
}

/// Soak parameters shared by every seed of a striped campaign.
#[derive(Clone, Debug)]
pub struct StripedChaosConfig {
    /// Transfer size per run, bytes.
    pub size: u64,
    /// Sim-time bound: a session still non-terminal past this is a hang.
    pub time_bound: Dur,
    /// Event-count livelock backstop.
    pub max_events: u64,
    /// Striping policy (cascade count, chunk quantum, redundancy budget,
    /// per-lane recovery).
    pub stripe: StripeConfig,
}

impl Default for StripedChaosConfig {
    fn default() -> StripedChaosConfig {
        StripedChaosConfig {
            size: 1 << 20,
            time_bound: Dur::from_secs(60),
            max_events: 5_000_000,
            stripe: StripeConfig {
                max_cascades: 3,
                // 2-block (128 KiB) chunks: a 1 MiB stream holds 16
                // blocks, so every lane sees several dispatch rounds and
                // work stealing has something to steal.
                chunk_blocks: 2,
                redundant_tail: 2,
                // The fault-drill recovery posture: impatient ladders so
                // a dead depot costs sim-seconds, not minutes.
                recovery: RecoveryConfig {
                    max_reconnects: 1,
                    backoff_base: Dur::from_millis(200),
                    backoff_cap: Dur::from_secs(2),
                    progress_timeout: Some(Dur::from_millis(500)),
                    max_retransfers: 2,
                    direct_fallback: true,
                    resume: true,
                },
            },
        }
    }
}

/// The storm envelope for the striping topology: every link is a flap
/// target, all three depots are crash targets, the client host is the
/// RST target.
pub fn striped_spec(case: &StripedCase) -> StormSpec {
    let sim = case.topo.clone().into_sim(0);
    StormSpec::new(Dur::from_millis(1500))
        .with_links((0..sim.num_links()).map(|i| LinkId(i as u32)).collect())
        .with_crash_nodes(case.depots.to_vec())
        .with_rst_nodes(vec![case.src])
        .with_atoms(1, 5)
        .with_max_outage(Dur::from_millis(800))
}

/// One seed's striped run: the storm, what the session did lane by lane,
/// the sink's ledger verdicts, and every contract breach.
#[derive(Debug)]
pub struct StripedRun {
    pub seed: u64,
    pub storm: StormPlan,
    pub state: ClientState,
    /// Cascades the session actually striped over (1 = degraded to the
    /// plain client).
    pub cascades: usize,
    /// Per-lane dispatch statistics (empty when degraded).
    pub lanes: Vec<LaneStat>,
    pub timeline: Vec<(Time, SessionEvent)>,
    pub outcomes: Vec<TransferOutcome>,
    /// Blocks the sink's ledger certified for this session.
    pub certified: u64,
    /// Blocks the stream holds — `Done` demands `certified == expected`.
    pub expected_blocks: u64,
    /// Duplicate deliveries the ledger discarded (redundant dispatch and
    /// races lose here, harmlessly).
    pub duplicates: u64,
    /// Stripe grants that still contained a verified block — the
    /// zero-verified-resend counter. The contract demands **zero**.
    pub regrants: u64,
    /// Session start to terminal state (or the bound, on a hang),
    /// seconds of sim time.
    pub duration_s: f64,
    pub events: u64,
    pub violations: Vec<ChaosViolation>,
    /// Deterministic telemetry captured while the seed ran.
    pub obs: lsl_obs::ObsReport,
}

impl StripedRun {
    /// Did the run satisfy the whole striped contract?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn completed(&self) -> bool {
        self.state == ClientState::Done
    }

    /// The distinct fault kinds this storm lowered to.
    pub fn kinds(&self) -> BTreeSet<&'static str> {
        self.storm.kinds()
    }

    /// A paste-able [`FaultPlan`](lsl_netsim::FaultPlan) builder chain
    /// reproducing this run's storm.
    pub fn drill(&self) -> String {
        self.storm.drill()
    }

    /// Aggregate delivered-bytes/duration, the bench's sessions/sec
    /// numerator. Zero on a failed run.
    pub fn throughput_mbps(&self) -> f64 {
        if !self.completed() || self.duration_s <= 0.0 {
            return 0.0;
        }
        (self.certified * lsl_session::RESUME_BLOCK) as f64 * 8.0 / 1e6 / self.duration_s
    }

    /// Canonical rendering — storm, timeline, outcomes, lanes, ledger
    /// verdicts — for byte-identical determinism comparisons across job
    /// counts.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "striped seed {} atoms {}",
            self.seed,
            self.storm.atoms.len()
        );
        for a in &self.storm.atoms {
            let _ = writeln!(s, "  atom {a:?}");
        }
        for (t, ev) in &self.timeline {
            let _ = writeln!(s, "{t:?} {ev:?}");
        }
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "outcome {:?} {:?} bytes={} digest={:?} verified={} resume_at={} \
                 stripe={:?} certified={} session={} at={:?}",
                o.session,
                o.status,
                o.bytes,
                o.digest_ok,
                o.verified_blocks,
                o.resume_offset,
                o.stripe,
                o.blocks_certified,
                o.session_verified,
                o.completed_at
            );
        }
        for (i, l) in self.lanes.iter().enumerate() {
            let _ = writeln!(
                s,
                "lane {i} route {} dispatched {} stolen {} redundant {} dead {}",
                l.route, l.blocks_dispatched, l.blocks_stolen, l.redundant_attempts, l.dead
            );
        }
        let _ = writeln!(
            s,
            "ledger {}/{} dup {} regrants {}",
            self.certified, self.expected_blocks, self.duplicates, self.regrants
        );
        let _ = writeln!(
            s,
            "state {:?} cascades {} events {} violations {:?}",
            self.state, self.cascades, self.events, self.violations
        );
        let _ = writeln!(
            s,
            "obs spans {} digest {:016x}",
            self.obs.spans.len(),
            self.obs.digest()
        );
        s
    }
}

/// Run one seed: draw the background storm, append the targeted
/// mid-transfer kill of depot `seed % 3` (permanent — the lane must die
/// or fail over, never wait it out), drive it, check the contract.
pub fn run_striped_seed(cfg: &StripedChaosConfig, seed: u64) -> StripedRun {
    let case = striped_case();
    let mut storm = FaultStormGen::new(striped_spec(&case)).generate(seed);
    storm.atoms.push(StormAtom::NodeCrash {
        node: case.depots[(seed % 3) as usize],
        // 40–180 ms: after the stripe grants land, before the ~300 ms
        // striped transfer drains — blocks are in flight on every lane.
        at: Dur::from_millis(40 + (seed % 8) * 20),
        downtime: None,
    });
    run_striped_storm(&case, cfg, storm)
}

/// Run an explicit storm (the shrinker re-enters here with atom
/// subsets). The sim seed is the storm's seed, so a shrunk reproduction
/// replays the exact packet-level timing of the original run.
pub fn run_striped_storm(
    case: &StripedCase,
    cfg: &StripedChaosConfig,
    storm: StormPlan,
) -> StripedRun {
    #[cfg(feature = "invariants")]
    drop(lsl_netsim::invariants::take());

    let (mut run, obs) = lsl_obs::recorded(|| run_striped_storm_inner(case, cfg, storm));
    run.obs = obs;
    run
}

fn run_striped_storm_inner(
    case: &StripedCase,
    cfg: &StripedChaosConfig,
    storm: StormPlan,
) -> StripedRun {
    // Borrow the fault-drill TCP posture (impatient SYN/data retries,
    // small send buffer) and sink idle watchdog; striping recovery rides
    // in cfg.stripe.
    let run_cfg = FaultRunConfig::new(cfg.size, storm.seed, storm.to_fault_plan());
    let mut sim = case.topo.clone().into_sim(run_cfg.seed);
    sim.install_faults(run_cfg.plan.clone());
    let mut net = Net::new(sim);

    let depot_cfg = DepotConfig::builder()
        .port(DEPOT_PORT)
        .tcp(run_cfg.tcp.clone())
        .setup_delay(Dur::from_millis(5))
        .build();
    let mut depots: Vec<Depot> = case
        .depots
        .iter()
        .map(|&d| Depot::new(&mut net, d, depot_cfg.clone()))
        .collect();
    let mut sink = SinkServer::new(&mut net, case.dst, SINK_PORT, true, run_cfg.tcp.clone());
    if let Some(d) = run_cfg.sink_idle {
        sink = sink.with_idle_timeout(d);
    }

    let mut client = StripedSession::start(
        &mut net,
        case.src,
        case.plan(),
        SessionId(0x57a1_0000 + run_cfg.seed as u128),
        run_cfg.size,
        run_cfg.tcp.clone(),
        cfg.stripe.clone(),
        None,
    );

    let deadline = Time::ZERO + cfg.time_bound;
    let mut outcomes: Vec<TransferOutcome> = Vec::new();
    let mut events: u64 = 0;
    let mut hung = false;
    while let Some(ev) = net.poll() {
        events += 1;
        if net.now() > deadline || events > cfg.max_events {
            hung = true;
            break;
        }
        let consumed =
            client.handle(&mut net, &ev).consumed() || sink.handle(&mut net, &ev).consumed();
        if !consumed {
            for d in &mut depots {
                if d.handle(&mut net, &ev).consumed() {
                    break;
                }
            }
        }
        for o in sink.take_outcomes() {
            if o.session == Some(client.session()) {
                client.on_outcome(&mut net, &o);
            }
            outcomes.push(o);
        }
        if client.is_done() {
            break;
        }
    }

    let state = client.state();
    let ended_at = client.finished_at().unwrap_or_else(|| net.now());
    let expected_blocks = stream_blocks(cfg.size);
    let certified = sink.session_certified(client.session());
    let duplicates = sink.duplicate_blocks(client.session());
    let regrants = sink.stripe_regrants();
    #[cfg(feature = "invariants")]
    let invariant_count = lsl_netsim::invariants::take().len();
    #[cfg(not(feature = "invariants"))]
    let invariant_count = 0;
    let violations = check_striped_contract(
        hung,
        events,
        net.now(),
        state,
        &outcomes,
        certified,
        expected_blocks,
        regrants,
        invariant_count,
    );
    net.sim().record_obs_link_metrics();

    StripedRun {
        seed: storm.seed,
        storm,
        state,
        cascades: client.cascades(),
        lanes: client.lane_stats(),
        timeline: client.take_events(),
        outcomes,
        certified,
        expected_blocks,
        duplicates,
        regrants,
        duration_s: (ended_at - client.started_at()).as_secs_f64(),
        events,
        violations,
        obs: lsl_obs::ObsReport::default(),
    }
}

/// The striped contract. The chaos contract's per-attempt resume floor
/// does not transfer — an empty stripe grant over an already-verified
/// chunk legitimately lands below another lane's verified high-water
/// mark without re-sending anything — so clause 3 is the *structural*
/// sink counter instead: a grant that still contained a verified block
/// is a violation wherever the run ended up.
#[allow(clippy::too_many_arguments)] // one call site, mirrors check_contract
fn check_striped_contract(
    hung: bool,
    events: u64,
    now: Time,
    state: ClientState,
    outcomes: &[TransferOutcome],
    certified: u64,
    expected_blocks: u64,
    regrants: u64,
    invariant_count: usize,
) -> Vec<ChaosViolation> {
    let mut v = Vec::new();
    if invariant_count > 0 {
        v.push(ChaosViolation::Invariants {
            count: invariant_count,
        });
    }
    if regrants > 0 {
        v.push(ChaosViolation::StripeRegrant { regrants });
    }
    if hung {
        v.push(ChaosViolation::Hang { at: now, events });
        return v;
    }
    let terminal = matches!(state, ClientState::Done | ClientState::Failed(_));
    if !terminal {
        v.push(ChaosViolation::Wedged { state });
        return v;
    }
    if state == ClientState::Done {
        if !outcomes.iter().any(|o| o.ok() && o.digest_ok == Some(true)) {
            v.push(ChaosViolation::NoVerifiedDelivery);
        }
        if certified < expected_blocks {
            v.push(ChaosViolation::PartialCertification {
                certified,
                expected: expected_blocks,
            });
        }
    }
    v
}

/// Run seeds `0..n` through the striping topology. Fan-out goes through
/// [`run_campaign`]: results arrive in seed order and are byte-identical
/// for any `jobs` value.
pub fn run_striped_campaign(cfg: &StripedChaosConfig, n: usize, jobs: usize) -> Vec<StripedRun> {
    run_campaign(n, jobs, |i| run_striped_seed(cfg, i as u64))
}

/// Shrink a failing [`StripedRun`] by re-running atom subsets under the
/// same seed, and return the minimal storm.
pub fn shrink_striped_run(cfg: &StripedChaosConfig, run: &StripedRun) -> StormPlan {
    let case = striped_case();
    let seed = run.seed;
    let minimal = crate::chaos::shrink_storm(&run.storm.atoms, |atoms| {
        let storm = StormPlan {
            seed,
            atoms: atoms.to_vec(),
        };
        !run_striped_storm(&case, cfg, storm).ok()
    });
    StormPlan {
        seed,
        atoms: minimal,
    }
}

/// Run the same calm seed striped and degraded to one cascade (which
/// delegates to the plain [`SessionClient`](lsl_session::SessionClient)
/// verbatim), for the striped-vs-single throughput comparison. Returns
/// `(striped, single)`.
pub fn striped_vs_single(cfg: &StripedChaosConfig, seed: u64) -> (StripedRun, StripedRun) {
    let case = striped_case();
    let striped = run_striped_storm(
        &case,
        cfg,
        StormPlan {
            seed,
            atoms: Vec::new(),
        },
    );
    let mut single_cfg = cfg.clone();
    single_cfg.stripe.max_cascades = 1;
    let single = run_striped_storm(
        &case,
        &single_cfg,
        StormPlan {
            seed,
            atoms: Vec::new(),
        },
    );
    (striped, single)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_session::endpoint::SendMode;
    use lsl_session::SessionClient;

    #[test]
    fn calm_striped_seed_certifies_every_block_across_three_cascades() {
        let cfg = StripedChaosConfig::default();
        let case = striped_case();
        let r = run_striped_storm(
            &case,
            &cfg,
            StormPlan {
                seed: 7,
                atoms: Vec::new(),
            },
        );
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.completed(), "state {:?}", r.state);
        assert_eq!(r.cascades, 3);
        assert_eq!(r.certified, r.expected_blocks);
        assert_eq!(r.regrants, 0);
        // Every lane moved real blocks.
        assert!(
            r.lanes.iter().all(|l| l.blocks_dispatched > 0),
            "{:?}",
            r.lanes
        );
        // The dispatcher's telemetry landed in the captured obs report:
        // one blocks-dispatched counter per cascade, matching the lane
        // stats exactly.
        for (i, l) in r.lanes.iter().enumerate() {
            assert_eq!(
                r.obs
                    .metrics
                    .counters
                    .get(&("stripe.blocks_dispatched", i as u64))
                    .copied(),
                Some(l.blocks_dispatched),
                "lane {i} counter out of step with its stats"
            );
        }
    }

    #[test]
    fn killing_two_depots_restripes_onto_survivors_without_verified_resends() {
        let cfg = StripedChaosConfig::default();
        let case = striped_case();
        // Two permanent depot kills: one lane fails over to the direct
        // fallback, the other exhausts its routes and dies — its
        // unverified blocks must be re-striped onto the survivors.
        let storm = StormPlan {
            seed: 3,
            atoms: vec![
                StormAtom::NodeCrash {
                    node: case.depots[0],
                    at: Dur::from_millis(60),
                    downtime: None,
                },
                StormAtom::NodeCrash {
                    node: case.depots[1],
                    at: Dur::from_millis(60),
                    downtime: None,
                },
            ],
        };
        let r = run_striped_storm(&case, &cfg, storm);
        assert!(
            r.ok(),
            "violations: {:?}\n{}",
            r.violations,
            r.fingerprint()
        );
        assert!(r.completed(), "state {:?}", r.state);
        assert!(
            r.timeline
                .iter()
                .any(|(_, e)| matches!(e, SessionEvent::SublinkDown(_))),
            "the kills never bit:\n{}",
            r.fingerprint()
        );
        assert_eq!(r.regrants, 0, "a verified block was re-sent");
        assert_eq!(r.certified, r.expected_blocks);
        // A lane died outright, so a survivor's pickup latency landed in
        // the rebalance histogram.
        if r.timeline
            .iter()
            .any(|(_, e)| matches!(e, SessionEvent::StripeLost { .. }))
        {
            let h = r
                .obs
                .metrics
                .hists
                .get("session.stripe.rebalance_ns")
                .expect("stripe loss recorded no rebalance latency");
            assert!(h.count > 0);
        }
    }

    #[test]
    fn targeted_seed_kill_satisfies_contract() {
        let cfg = StripedChaosConfig::default();
        for seed in 0..3 {
            let r = run_striped_seed(&cfg, seed);
            assert!(
                r.ok(),
                "seed {seed} violations: {:?}\n{}",
                r.violations,
                r.fingerprint()
            );
        }
    }

    #[test]
    fn striping_beats_the_single_cascade_on_the_lossy_backbone() {
        let cfg = StripedChaosConfig::default();
        let (striped, single) = striped_vs_single(&cfg, 11);
        assert!(striped.completed() && single.completed());
        assert_eq!(striped.cascades, 3);
        assert_eq!(single.cascades, 1);
        // Each cascade's backbone TCP is Mathis-limited by the 2e-3
        // loss; three concurrent cascades should aggregate well past the
        // single one. The acceptance gate is >=; in practice ~2x.
        assert!(
            striped.duration_s < single.duration_s,
            "striped {:.3}s vs single {:.3}s",
            striped.duration_s,
            single.duration_s
        );
    }

    /// Degradation acceptance: `max_cascades = 1` must be *byte-identical*
    /// to driving the plain [`SessionClient`] — same timeline, same
    /// outcomes, same timestamps.
    #[test]
    fn single_cascade_degradation_is_byte_identical_to_session_client() {
        let cfg = {
            let mut c = StripedChaosConfig::default();
            c.stripe.max_cascades = 1;
            c
        };
        let case = striped_case();
        let seed = 5;
        let striped = run_striped_storm(
            &case,
            &cfg,
            StormPlan {
                seed,
                atoms: Vec::new(),
            },
        );
        assert_eq!(striped.cascades, 1);

        // The same run, hand-driven through SessionClient with the exact
        // arguments StripedSession::start would delegate.
        let run_cfg = FaultRunConfig::new(cfg.size, seed, lsl_netsim::FaultPlan::new());
        let mut net = Net::new(case.topo.clone().into_sim(seed));
        let depot_cfg = DepotConfig::builder()
            .port(DEPOT_PORT)
            .tcp(run_cfg.tcp.clone())
            .setup_delay(Dur::from_millis(5))
            .build();
        let mut depots: Vec<Depot> = case
            .depots
            .iter()
            .map(|&d| Depot::new(&mut net, d, depot_cfg.clone()))
            .collect();
        let mut sink = SinkServer::new(&mut net, case.dst, SINK_PORT, true, run_cfg.tcp.clone());
        if let Some(d) = run_cfg.sink_idle {
            sink = sink.with_idle_timeout(d);
        }
        let mut client = SessionClient::start(
            &mut net,
            case.src,
            case.plan(),
            SessionId(0x57a1_0000 + seed as u128),
            cfg.size,
            SendMode::lsl(),
            run_cfg.tcp.clone(),
            cfg.stripe.recovery.clone(),
            None,
        );
        let mut outcomes: Vec<TransferOutcome> = Vec::new();
        while let Some(ev) = net.poll() {
            let consumed =
                client.handle(&mut net, &ev).consumed() || sink.handle(&mut net, &ev).consumed();
            if !consumed {
                for d in &mut depots {
                    if d.handle(&mut net, &ev).consumed() {
                        break;
                    }
                }
            }
            for o in sink.take_outcomes() {
                if o.session == Some(client.session()) {
                    client.on_outcome(&mut net, &o);
                }
                outcomes.push(o);
            }
            if client.is_done() {
                break;
            }
        }

        assert_eq!(
            format!("{:?}", striped.timeline),
            format!("{:?}", client.take_events()),
            "degraded striped timeline diverged from the plain client"
        );
        assert_eq!(
            format!("{:?}", striped.outcomes),
            format!("{:?}", outcomes),
            "degraded striped outcomes diverged from the plain client"
        );
        assert_eq!(striped.state, client.state());
    }

    #[test]
    fn striped_campaign_fingerprints_identical_across_job_counts() {
        let cfg = StripedChaosConfig::default();
        let seq: Vec<String> = run_striped_campaign(&cfg, 4, 1)
            .iter()
            .map(|r| r.fingerprint())
            .collect();
        let par: Vec<String> = run_striped_campaign(&cfg, 4, 4)
            .iter()
            .map(|r| r.fingerprint())
            .collect();
        assert_eq!(seq, par);
    }
}
