//! Calibrated experiment topologies and the experiment runner.
//!
//! The paper's testbed is unavailable (Abilene circa 2001), so each
//! measurement case is modelled as a small topology whose link
//! parameters are calibrated so trace-measured RTTs and achieved
//! bandwidth plateaus land near the paper's reported values (see
//! DESIGN.md's substitution table):
//!
//! * **case 1** — UCSB → UIUC, depot at the Denver POP (Figs 3, 5, 6,
//!   11–25),
//! * **case 2** — UCSB → UF, depot at the Houston POP (Figs 4, 7, 8, 26),
//! * **case 3** — UTK → UCSB over an 802.11b wireless edge, depot at the
//!   campus wired/wireless boundary (Figs 9, 10, 27),
//! * **case 4** — UCSB → OSU via Denver, steady-state study (Figs 28,
//!   29).
//!
//! [`runner`] executes one measured transfer (direct TCP or LSL) on a
//! case and returns wall-clock timing plus the sender-side traces of
//! every connection, exactly as the paper instruments its runs;
//! [`sweep`] repeats across sizes/iterations and aggregates; [`faults`]
//! drills the session recovery layer against scripted failures on a
//! redundant-depot topology; [`chaos`] soaks the same topology under
//! seeded random fault storms with a machine-checked per-run contract;
//! [`striping`] soaks RAIL-style striped multi-cascade sessions on a
//! three-depot topology with a targeted cascade kill every seed and the
//! zero-verified-resend counter checked per run.

pub mod campaign;
pub mod chaos;
pub mod faults;
pub mod paths;
pub mod report;
pub mod routing;
pub mod runner;
pub mod striping;
pub mod sweep;

pub use campaign::{default_jobs, run_campaign};
pub use chaos::{
    chaos_spec, run_chaos_campaign, run_chaos_seed, run_chaos_storm, shrink_chaos_run,
    shrink_storm, ChaosConfig, ChaosRun, ChaosViolation,
};
pub use faults::{
    failover_case, run_access_flap, run_all_depots_down, run_depot_crash, run_fault_transfer,
    run_sublink_rst, FailoverCase, FaultRunConfig, FaultRunResult,
};
pub use paths::{case1, case2, case3, case4, PathCase};
pub use routing::{
    run_routing_campaign, run_routing_seed, run_routing_storm, ForecastPlane, RoutingConfig,
    RoutingMode, RoutingPair, RoutingRun, FORECAST_TIMER_TAG,
};
pub use runner::{run_transfer, Mode, RunConfig, RunResult};
pub use striping::{
    run_striped_campaign, run_striped_seed, run_striped_storm, shrink_striped_run, striped_case,
    striped_spec, striped_vs_single, StripedCase, StripedChaosConfig, StripedRun,
};
pub use sweep::{sweep_sizes, sweep_sizes_jobs, SweepPoint};
