//! Forecast-driven routing campaign: the closed NWS loop under storms.
//!
//! This module wires the measurement plane the paper assumes ("network
//! performance information available from a system such as the Network
//! Weather Service", §III) into the recovering session:
//!
//! ```text
//!   netsim probes ──► LinkRegistry ──► quantize ──► cascade_score_ns
//!        ▲  (per-sublink bw/rtt/loss)   (NWS mixture)   (fixed-point)
//!        │                                                   │
//!   live sublink srtt (passive piggyback)                    ▼
//!        └──────────────── SessionClient::update_scores ◄────┘
//!                         (forecast-best start, re-scored failover,
//!                          proactive Rerouted before the sublink dies)
//! ```
//!
//! [`ForecastPlane`] owns the sensors: a periodic probe timer (bit-60
//! token tag, disjoint from the client/sink/net tags) sweeps every
//! candidate sublink through [`Simulator::probe_path`] — idle links
//! included, exactly the NWS's low-rate active probes — and each sweep
//! also piggybacks the live sublink's smoothed RTT off real session
//! traffic. Observations land in the honest [`LinkRegistry`] API;
//! scoring quantizes forecasts once ([`SublinkForecast::quantize`]) and
//! is pure integer arithmetic after that, so a campaign fingerprint is
//! byte-identical at any `--jobs` count.
//!
//! [`run_routing_seed`] runs the *same* storm against the same topology
//! in both [`RoutingMode::Static`] (PR-5 behavior: plan order, blind
//! next-in-list failover) and [`RoutingMode::Forecast`] (scored start,
//! re-scored recovery, proactive re-route), checks the chaos contract
//! on both, and pairs them for the forecast-vs-static evaluation.
//!
//! [`Simulator::probe_path`]: lsl_netsim::Simulator::probe_path

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lsl_netsim::{Dur, FaultStormGen, NodeId, StormPlan, Time};
use lsl_nws::{Confidence, LinkRegistry};
use lsl_session::endpoint::SendMode;
use lsl_session::{
    cascade_score_ns, ClientState, Depot, DepotConfig, LslPath, RoutePlan, SessionClient,
    SessionEvent, SessionId, SinkServer, SublinkForecast, TransferOutcome,
};
use lsl_tcp::{AppEvent, Net};

use crate::campaign::run_campaign;
use crate::chaos::{chaos_spec, check_contract, ChaosViolation};
use crate::faults::{failover_case, FailoverCase, FaultRunConfig};
use crate::paths::{DEPOT_PORT, SINK_PORT};

/// Timer-token tag for the forecast plane's probe timer. Bit 63 is the
/// net layer's, 62 the session client's, 61 the sink's; bit 60 keeps
/// the measurement plane's ticks out of everyone else's dispatch.
pub const FORECAST_TIMER_TAG: u64 = 1 << 60;

/// How route selection is driven for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// PR-5 behavior: plan order, next-in-list failover, no sensors.
    Static,
    /// The closed NWS loop: probe, forecast, score, re-route.
    Forecast,
}

/// Campaign parameters shared by every seed.
#[derive(Clone, Debug)]
pub struct RoutingConfig {
    /// Transfer size per run, bytes.
    pub size: u64,
    /// Sim-time bound: a client still non-terminal past this is a hang.
    pub time_bound: Dur,
    /// Event-count livelock backstop.
    pub max_events: u64,
    /// Probe-sweep period. The reaction time to a dying route is one
    /// period plus one score pass, so this bounds how "proactive" the
    /// proactive re-route can be.
    pub probe_period: Dur,
}

impl Default for RoutingConfig {
    fn default() -> RoutingConfig {
        RoutingConfig {
            size: 1 << 20,
            time_bound: Dur::from_secs(60),
            max_events: 5_000_000,
            probe_period: Dur::from_millis(100),
        }
    }
}

/// The in-sim measurement plane: per-sublink probe sensors feeding an
/// NWS forecaster registry, plus the fixed-point scoring pass that
/// turns forecasts into candidate scores.
pub struct ForecastPlane {
    /// Client host — the timer owner and the source of passive samples.
    node: NodeId,
    /// Every directed sublink any candidate (or the direct fallback)
    /// would ride; probed each sweep whether or not traffic rides it.
    sublinks: Vec<(NodeId, NodeId)>,
    registry: LinkRegistry,
    /// Last-probe reachability per sublink: a down sublink forces
    /// `None` scores for every route through it, independent of how
    /// rosy its (stale) forecast still looks.
    up: BTreeMap<(u32, u32), bool>,
    period: Dur,
    /// Accepted probe observations (for campaign telemetry).
    pub probes: u64,
    /// Completed sweeps.
    pub sweeps: u64,
}

impl ForecastPlane {
    pub fn new(node: NodeId, sublinks: Vec<(NodeId, NodeId)>, period: Dur) -> ForecastPlane {
        let up = sublinks.iter().map(|&(s, d)| ((s.0, d.0), true)).collect();
        ForecastPlane {
            node,
            sublinks,
            registry: LinkRegistry::new(),
            up,
            period,
            probes: 0,
            sweeps: 0,
        }
    }

    /// Arm the next probe tick.
    pub fn arm(&self, net: &mut Net) {
        net.set_app_timer(self.node, net.now() + self.period, FORECAST_TIMER_TAG);
    }

    /// Is this event our probe timer?
    pub fn is_tick(&self, ev: &AppEvent) -> bool {
        matches!(ev, AppEvent::Timer { node, token }
            if *node == self.node && token & FORECAST_TIMER_TAG != 0)
    }

    /// One probe sweep: measure every candidate sublink from current
    /// simulator state. Unreachable sublinks contribute no observation
    /// (a dead probe has no numbers to report) but flip the `up` flag
    /// that vetoes their routes' scores.
    pub fn sweep(&mut self, net: &Net) {
        for (i, &(src, dst)) in self.sublinks.iter().enumerate() {
            let probe = net.sim().probe_path(src, dst);
            let up = probe.is_some_and(|p| p.up);
            self.up.insert((src.0, dst.0), up);
            if let Some(p) = probe.filter(|p| p.up) {
                self.registry
                    .observe_bandwidth(src.0, dst.0, p.bandwidth_bps as f64);
                self.registry.observe_rtt(src.0, dst.0, p.rtt.as_secs_f64());
                self.registry.observe_loss(src.0, dst.0, p.loss);
                self.probes += 1;
                lsl_obs::counter_add("nws.probe", i as u64, 1);
            } else {
                lsl_obs::counter_add("nws.probe_down", i as u64, 1);
            }
        }
        self.sweeps += 1;
    }

    /// Passive sensor: piggyback the live sublink's smoothed RTT off
    /// real session traffic — the paper's "TCP extended statistics MIB
    /// or the like" — instead of spending a probe on it.
    pub fn observe_live(&mut self, net: &Net, client: &SessionClient) {
        let Some(sock) = client.sock() else { return };
        let Some(srtt) = net.srtt(sock) else { return };
        let path = client.current_path();
        let first = path.depots.first().unwrap_or(&path.dst).node;
        if self
            .registry
            .observe_rtt(self.node.0, first.0, srtt.as_secs_f64())
        {
            lsl_obs::counter_add("nws.passive_rtt", u64::from(first.0), 1);
        }
    }

    /// Score every candidate in `plan` for a `size`-byte transfer:
    /// decompose each route into directed sublinks, quantize each
    /// sublink's forecast, and run the fixed-point cascade model. A
    /// route is unscored (`None`) if any of its sublinks was down at
    /// the last sweep, has no [`Confidence::Seasoned`] forecast yet, or
    /// has a forecast the quantizer rejects.
    pub fn scores(&self, plan: &RoutePlan, size: u64) -> Vec<Option<u64>> {
        plan.candidates()
            .iter()
            .map(|c| self.score_path(&c.path, size))
            .collect()
    }

    fn score_path(&self, path: &LslPath, size: u64) -> Option<u64> {
        let mut legs = Vec::with_capacity(path.depots.len() + 1);
        let mut at = self.node;
        for hop in path.depots.iter().chain(std::iter::once(&path.dst)) {
            if !self.up.get(&(at.0, hop.node.0)).copied().unwrap_or(false) {
                return None;
            }
            let f = self.registry.forecast(at.0, hop.node.0)?;
            if f.confidence != Confidence::Seasoned {
                return None;
            }
            legs.push(SublinkForecast::quantize(
                f.bandwidth_bps?,
                f.rtt_s?,
                f.loss?,
            )?);
            at = hop.node;
        }
        cascade_score_ns(&legs, size)
    }

    /// Final registry state, quantized — the deterministic dump that
    /// rides on the run fingerprint (no f64 formatting involved).
    pub fn dump(&self) -> Vec<((u32, u32), Option<SublinkForecast>)> {
        self.sublinks
            .iter()
            .map(|&(s, d)| {
                let q = self
                    .registry
                    .forecast(s.0, d.0)
                    .and_then(|f| SublinkForecast::quantize(f.bandwidth_bps?, f.rtt_s?, f.loss?));
                ((s.0, d.0), q)
            })
            .collect()
    }
}

/// One seed+mode run: what the storm was, what the session did, and
/// what the measurement plane saw.
#[derive(Debug)]
pub struct RoutingRun {
    pub seed: u64,
    pub mode: RoutingMode,
    pub storm: StormPlan,
    pub state: ClientState,
    pub route_used: usize,
    pub timeline: Vec<(Time, SessionEvent)>,
    pub outcomes: Vec<TransferOutcome>,
    pub duration_s: f64,
    pub events: u64,
    pub violations: Vec<ChaosViolation>,
    /// Accepted probe observations (0 in static mode).
    pub probes: u64,
    /// Quantized final forecast per probed sublink (empty in static
    /// mode).
    pub forecasts: Vec<((u32, u32), Option<SublinkForecast>)>,
    pub obs: lsl_obs::ObsReport,
}

impl RoutingRun {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn completed(&self) -> bool {
        self.state == ClientState::Done
    }

    /// Proactive re-routes the client performed.
    pub fn reroutes(&self) -> usize {
        self.timeline
            .iter()
            .filter(|(_, e)| matches!(e, SessionEvent::Rerouted { .. }))
            .count()
    }

    /// Canonical rendering for byte-identical determinism comparisons
    /// across job counts: every field is integer or `Debug` of typed
    /// enums; forecasts are quantized before formatting.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "routing seed {} mode {:?} atoms {}",
            self.seed,
            self.mode,
            self.storm.atoms.len()
        );
        for a in &self.storm.atoms {
            let _ = writeln!(s, "  atom {a:?}");
        }
        for (t, ev) in &self.timeline {
            let _ = writeln!(s, "{t:?} {ev:?}");
        }
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "outcome {:?} {:?} bytes={} digest={:?} verified={} resume_at={} at={:?}",
                o.session,
                o.status,
                o.bytes,
                o.digest_ok,
                o.verified_blocks,
                o.resume_offset,
                o.completed_at
            );
        }
        for ((src, dst), f) in &self.forecasts {
            let _ = writeln!(s, "forecast {src}->{dst} {f:?}");
        }
        let _ = writeln!(
            s,
            "state {:?} route {} events {} probes {} violations {:?}",
            self.state, self.route_used, self.events, self.probes, self.violations
        );
        let _ = writeln!(
            s,
            "obs spans {} digest {:016x}",
            self.obs.spans.len(),
            self.obs.digest()
        );
        s
    }
}

/// Both halves of one seed's storm: the same faults, with and without
/// the forecast loop.
#[derive(Debug)]
pub struct RoutingPair {
    pub static_run: RoutingRun,
    pub forecast_run: RoutingRun,
}

impl RoutingPair {
    pub fn ok(&self) -> bool {
        self.static_run.ok() && self.forecast_run.ok()
    }

    pub fn fingerprint(&self) -> String {
        format!(
            "{}{}",
            self.static_run.fingerprint(),
            self.forecast_run.fingerprint()
        )
    }
}

/// Warm-up sweeps before the session starts, so the initial route pick
/// is forecast-driven: [`super::chaos`] storms land from 0 on, and the
/// registry needs `SEASONED_SAMPLES` accepted samples per metric before
/// [`ForecastPlane::scores`] trusts a forecast. Probes read simulator
/// state, so pre-session sweeps cost no sim time.
const WARMUP_SWEEPS: usize = 8;

/// Run one explicit storm in one mode.
pub fn run_routing_storm(
    case: &FailoverCase,
    cfg: &RoutingConfig,
    mode: RoutingMode,
    storm: StormPlan,
) -> RoutingRun {
    #[cfg(feature = "invariants")]
    drop(lsl_netsim::invariants::take());
    let (mut run, obs) = lsl_obs::recorded(|| run_routing_storm_inner(case, cfg, mode, storm));
    run.obs = obs;
    run
}

fn run_routing_storm_inner(
    case: &FailoverCase,
    cfg: &RoutingConfig,
    mode: RoutingMode,
    storm: StormPlan,
) -> RoutingRun {
    let run_cfg = FaultRunConfig::new(cfg.size, storm.seed, storm.to_fault_plan());
    let mut sim = case.topo.clone().into_sim(run_cfg.seed);
    sim.install_faults(run_cfg.plan.clone());
    let mut net = Net::new(sim);

    let depot_cfg = DepotConfig::builder()
        .port(DEPOT_PORT)
        .tcp(run_cfg.tcp.clone())
        .setup_delay(Dur::from_millis(5))
        .build();
    let mut depots = vec![
        Depot::new(&mut net, case.depot_a, depot_cfg.clone()),
        Depot::new(&mut net, case.depot_b, depot_cfg),
    ];
    let mut sink = SinkServer::new(&mut net, case.dst, SINK_PORT, true, run_cfg.tcp.clone());
    if let Some(d) = run_cfg.sink_idle {
        sink = sink.with_idle_timeout(d);
    }

    let mut plan = case.plan();
    let mut plane = match mode {
        RoutingMode::Static => None,
        RoutingMode::Forecast => {
            let mut plane = ForecastPlane::new(case.src, case.sublinks(), cfg.probe_period);
            for _ in 0..WARMUP_SWEEPS {
                plane.sweep(&net);
            }
            // Forecast-best *start*: score the declared candidates so
            // SessionClient::start ranks them instead of trusting plan
            // order.
            for (i, s) in plane.scores(&plan, cfg.size).iter().enumerate() {
                plan.set_score(i, *s);
            }
            Some(plane)
        }
    };

    let mut client = SessionClient::start(
        &mut net,
        case.src,
        plan,
        SessionId(0xf0c0 + run_cfg.seed as u128),
        run_cfg.size,
        SendMode::lsl(),
        run_cfg.tcp.clone(),
        run_cfg.recovery.clone(),
        None,
    );
    if let Some(plane) = plane.as_ref() {
        plane.arm(&mut net);
    }

    let deadline = Time::ZERO + cfg.time_bound;
    let mut outcomes: Vec<TransferOutcome> = Vec::new();
    let mut events: u64 = 0;
    let mut hung = false;
    while let Some(ev) = net.poll() {
        events += 1;
        if net.now() > deadline || events > cfg.max_events {
            hung = true;
            break;
        }
        if plane.as_ref().is_some_and(|p| p.is_tick(&ev)) {
            let plane = plane.as_mut().expect("tick implies plane");
            plane.observe_live(&net, &client);
            plane.sweep(&net);
            plane.arm(&mut net);
            // The scoring pass covers the client's own plan — including
            // the direct fallback the recovery layer appended — and the
            // client decides whether the fresh scores justify leaving a
            // working route.
            let scores = plane.scores(client.plan(), cfg.size);
            for (i, s) in scores.iter().enumerate() {
                lsl_obs::gauge_set("nws.score_ns", i as u64, s.unwrap_or(u64::MAX));
            }
            client.update_scores(&mut net, &scores);
        } else {
            let consumed =
                client.handle(&mut net, &ev).consumed() || sink.handle(&mut net, &ev).consumed();
            if !consumed {
                for d in &mut depots {
                    if d.handle(&mut net, &ev).consumed() {
                        break;
                    }
                }
            }
        }
        for o in sink.take_outcomes() {
            if o.session == Some(client.session()) {
                client.on_outcome(&mut net, &o);
            }
            outcomes.push(o);
        }
        if client.is_done() {
            break;
        }
    }

    let state = client.state();
    let ended_at = client.finished_at.unwrap_or_else(|| net.now());
    #[cfg(feature = "invariants")]
    let invariant_count = lsl_netsim::invariants::take().len();
    #[cfg(not(feature = "invariants"))]
    let invariant_count = 0;
    let violations = check_contract(hung, events, net.now(), state, &outcomes, invariant_count);
    net.sim().record_obs_link_metrics();

    RoutingRun {
        seed: storm.seed,
        mode,
        state,
        route_used: client.route_index(),
        timeline: client.take_events(),
        outcomes,
        duration_s: (ended_at - client.started_at).as_secs_f64(),
        events,
        violations,
        probes: plane.as_ref().map_or(0, |p| p.probes),
        forecasts: plane.as_ref().map_or_else(Vec::new, ForecastPlane::dump),
        obs: lsl_obs::ObsReport::default(),
        storm,
    }
}

/// Run one seed's storm in both modes — the same faults, blind vs
/// forecast-driven — and check the contract on each.
pub fn run_routing_seed(cfg: &RoutingConfig, seed: u64) -> RoutingPair {
    let case = failover_case();
    let storm = FaultStormGen::new(chaos_spec(&case)).generate(seed);
    RoutingPair {
        static_run: run_routing_storm(&case, cfg, RoutingMode::Static, storm.clone()),
        forecast_run: run_routing_storm(&case, cfg, RoutingMode::Forecast, storm),
    }
}

/// Run seeds `0..n` through both modes. Fan-out goes through
/// [`run_campaign`]: results arrive in seed order and are byte-identical
/// for any `jobs` value.
pub fn run_routing_campaign(cfg: &RoutingConfig, n: usize, jobs: usize) -> Vec<RoutingPair> {
    run_campaign(n, jobs, |i| run_routing_seed(cfg, i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_netsim::StormAtom;

    fn quick_cfg() -> RoutingConfig {
        RoutingConfig {
            size: 256 * 1024,
            ..RoutingConfig::default()
        }
    }

    #[test]
    fn calm_seed_scores_and_completes() {
        let case = failover_case();
        let storm = StormPlan {
            seed: 11,
            atoms: Vec::new(),
        };
        let r = run_routing_storm(&case, &quick_cfg(), RoutingMode::Forecast, storm);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.completed(), "state {:?}", r.state);
        assert!(r.probes > 0, "the probe plane never ran");
        assert!(
            r.forecasts.iter().all(|(_, f)| f.is_some()),
            "calm run: every sublink ends with a usable quantized forecast: {:?}",
            r.forecasts
        );
        assert_eq!(r.reroutes(), 0, "no storm, no reason to leave the route");
    }

    #[test]
    fn static_mode_matches_chaos_behavior() {
        // The static arm *is* the chaos campaign's client — byte-equal
        // timelines — so the forecast-vs-static comparison is against
        // the established baseline, not a strawman.
        let case = failover_case();
        let storm = FaultStormGen::new(chaos_spec(&case)).generate(3);
        let r = run_routing_storm(&case, &quick_cfg(), RoutingMode::Static, storm.clone());
        let c = crate::chaos::run_chaos_storm(
            &case,
            &crate::chaos::ChaosConfig {
                size: 256 * 1024,
                ..crate::chaos::ChaosConfig::default()
            },
            storm,
        );
        assert_eq!(r.state, c.state);
        assert_eq!(r.route_used, c.route_used);
        assert_eq!(r.timeline, c.timeline);
        assert_eq!(r.probes, 0);
    }

    /// The drill the issue demands: the primary depot dies mid-stream,
    /// and the probe plane notices *before* the sublink's TCP gives up —
    /// the client re-routes proactively and no verified block is ever
    /// re-sent.
    #[test]
    fn depot_death_triggers_proactive_reroute() {
        let case = failover_case();
        let storm = StormPlan {
            seed: 21,
            atoms: vec![StormAtom::NodeCrash {
                node: case.depot_a,
                at: Dur::from_millis(400),
                downtime: None,
            }],
        };
        let cfg = RoutingConfig {
            size: 2 << 20,
            ..RoutingConfig::default()
        };
        let r = run_routing_storm(&case, &cfg, RoutingMode::Forecast, storm);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.completed(), "state {:?}", r.state);
        let rerouted_at = r
            .timeline
            .iter()
            .find(|(_, e)| matches!(e, SessionEvent::Rerouted { .. }))
            .map(|(t, _)| *t)
            .expect("proactive reroute fired");
        // Proactive means *before* the dying sublink's failure event.
        if let Some(down_at) = r
            .timeline
            .iter()
            .find(|(_, e)| matches!(e, SessionEvent::SublinkDown(_)))
            .map(|(t, _)| *t)
        {
            assert!(
                rerouted_at < down_at,
                "reroute at {rerouted_at:?} should precede sublink death at {down_at:?}"
            );
        }
        // Zero re-sent verified blocks: already part of ok(), but spell
        // the specific clause out.
        assert!(!r
            .violations
            .iter()
            .any(|v| matches!(v, ChaosViolation::ResumeRegression { .. })));
    }

    /// The resume-grant × reroute interplay drill: an RST kills the
    /// first attempt with blocks already verified, so the client enters
    /// resume recovery — a grant is in flight. Mid-recovery the primary
    /// depot dies and the probe plane pulls the client off the route
    /// *before* the reconnect lands, so the grant the session
    /// eventually negotiates belongs to a different cascade than the
    /// one recovery started on. That grant must still skip every block
    /// the dead attempt verified: `Rerouted` with a resume grant in
    /// flight never re-sends a verified block.
    #[test]
    fn reroute_with_resume_grant_in_flight_never_resends_verified() {
        let case = failover_case();
        let storm = StormPlan {
            seed: 33,
            atoms: vec![
                StormAtom::SublinkRst {
                    node: case.src,
                    at: Dur::from_millis(400),
                },
                StormAtom::NodeCrash {
                    node: case.depot_a,
                    at: Dur::from_millis(600),
                    downtime: None,
                },
            ],
        };
        let cfg = RoutingConfig {
            size: 4 << 20,
            ..RoutingConfig::default()
        };
        let r = run_routing_storm(&case, &cfg, RoutingMode::Forecast, storm);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.completed(), "state {:?}", r.state);
        // The RST-felled attempt left verified blocks behind — the
        // boundary the in-flight resume must respect.
        assert!(
            r.outcomes.iter().any(|o| !o.ok() && o.verified_blocks > 0),
            "the RST never bit a mid-stream attempt:\n{}",
            r.fingerprint()
        );
        let rerouted_at = r
            .timeline
            .iter()
            .find(|(_, e)| matches!(e, SessionEvent::Rerouted { .. }))
            .map(|(t, _)| *t)
            .expect("reroute fired during resume recovery");
        // The attempt the reroute redirected still resumed past the dead
        // attempt's verified boundary — nothing verified was re-sent.
        assert!(
            r.timeline.iter().any(|(t, e)| *t >= rerouted_at
                && matches!(e, SessionEvent::Resumed { from_block, .. } if *from_block > 0)),
            "the re-routed attempt did not resume mid-stream:\n{}",
            r.fingerprint()
        );
        assert!(!r
            .violations
            .iter()
            .any(|v| matches!(v, ChaosViolation::ResumeRegression { .. })));
    }

    #[test]
    fn campaign_fingerprints_are_jobs_invariant() {
        let cfg = quick_cfg();
        let seq: Vec<String> = run_routing_campaign(&cfg, 4, 1)
            .iter()
            .map(RoutingPair::fingerprint)
            .collect();
        let par: Vec<String> = run_routing_campaign(&cfg, 4, 4)
            .iter()
            .map(RoutingPair::fingerprint)
            .collect();
        assert_eq!(seq, par);
    }
}
