//! Acceptance scenarios for the fault-injection + recovery stack
//! (ISSUE 4): depot crash → failover, total depot loss → degraded
//! direct TCP, access flap → reconnect persistence, and byte-identical
//! fault traces under a fixed seed.

use lsl_netsim::{Dur, FaultPlan, Time};
use lsl_session::{SessionError, SessionEvent, TransferStatus, RESUME_BLOCK};
use lsl_workloads::{
    failover_case, run_access_flap, run_all_depots_down, run_depot_crash, run_fault_transfer,
    run_sublink_rst, FaultRunConfig,
};

#[test]
fn depot_crash_fails_over_and_verifies_digest() {
    let r = run_depot_crash(7);
    assert!(r.completed(), "state {:?}\n{}", r.state, r.fingerprint());

    // The primary depot died *silently* (a crash sends no RST), so the
    // loss must have been detected by the watchdog or a TCP timeout and
    // reported with its typed reason; the client then failed over to the
    // backup depot route (index 1) — not degraded to direct TCP.
    assert!(r.saw(|e| matches!(
        e,
        SessionEvent::SublinkDown(SessionError::Stalled | SessionError::Tcp(_))
    )));
    assert!(r.saw(|e| matches!(e, SessionEvent::FailedOver { route: 1 })));
    assert!(!r.saw(|e| matches!(e, SessionEvent::Degraded)));
    assert_eq!(r.route_used, 1);

    // End-to-end integrity held across the failover: the verified
    // delivery carries the full byte count and a passing digest.
    let d = r.delivery().expect("verified delivery");
    assert_eq!(d.bytes, 2 << 20);
    assert_eq!(d.digest_ok, Some(true));
    assert!(d.content_ok);
}

#[test]
fn sublink_rst_reconnects_and_sink_logs_typed_failure() {
    let r = run_sublink_rst(7);
    assert!(r.completed(), "state {:?}\n{}", r.state, r.fingerprint());

    // The RST killed only the connections, not the depots: recovery is a
    // reconnect over the *same* primary route, no failover needed.
    assert!(r.saw(|e| matches!(
        e,
        SessionEvent::SublinkDown(SessionError::Tcp(_) | SessionError::Stalled)
    )));
    assert!(r.saw(|e| matches!(e, SessionEvent::Reconnecting { attempt: 1, .. })));
    assert!(!r.saw(|e| matches!(e, SessionEvent::FailedOver { .. })));
    assert_eq!(r.route_used, 0);

    // The reset cascaded depot → sink, so the dead attempt surfaced at
    // the sink as a *typed* failure — not the old opaque error counter.
    assert!(r
        .outcomes
        .iter()
        .any(|o| matches!(o.status, TransferStatus::Failed(SessionError::Tcp(_)))));
    assert_eq!(
        r.delivery().expect("verified delivery").digest_ok,
        Some(true)
    );
}

#[test]
fn all_depots_down_degrades_to_direct_tcp() {
    let r = run_all_depots_down(7);
    assert!(r.completed(), "state {:?}\n{}", r.state, r.fingerprint());

    // Both depot routes were exhausted before the client fell back.
    assert!(r.saw(|e| matches!(e, SessionEvent::FailedOver { route: 1 })));
    assert!(r.saw(|e| matches!(e, SessionEvent::Degraded)));
    // The direct fallback is appended after the two depot routes.
    assert_eq!(r.route_used, 2);

    // Degraded mode still speaks LSL framing end-to-end, so the digest
    // is verified even without a depot.
    let d = r.delivery().expect("verified delivery");
    assert_eq!(d.bytes, 1 << 20);
    assert_eq!(d.digest_ok, Some(true));
}

#[test]
fn access_flap_recovers_by_reconnecting() {
    let r = run_access_flap(7);
    assert!(r.completed(), "state {:?}\n{}", r.state, r.fingerprint());

    // The outage took every route down at once; completion must have
    // come through backoff-paced reconnects, with the stall watchdog
    // (not TCP give-up) detecting the dead sublink.
    assert!(r.saw(|e| matches!(e, SessionEvent::Reconnecting { .. })));
    assert!(r.saw(|e| matches!(
        e,
        SessionEvent::SublinkDown(SessionError::Stalled | SessionError::Tcp(_))
    )));
    let d = r.delivery().expect("verified delivery");
    assert_eq!(d.digest_ok, Some(true));
}

/// ISSUE 5 acceptance: a depot crash injected late in the stream (at
/// 75% or more verified completion) resumes from the last verified
/// block on the failover route — the re-sent tail is under 25% of the
/// stream, where the pre-resume recovery ladder re-sent 100%.
#[test]
fn late_depot_crash_resumes_instead_of_restarting() {
    let size: u64 = 8 << 20;
    let case = failover_case();
    let plan = FaultPlan::new().node_down(Time::ZERO + Dur::from_millis(10_500), case.depot_a);
    let r = run_fault_transfer(&case, &FaultRunConfig::new(size, 7, plan));
    assert!(r.completed(), "state {:?}\n{}", r.state, r.fingerprint());

    // The crash landed late: the dead attempt's verified boundary (the
    // sink's delivery verdict) already covered >= 75% of the stream.
    let failed = r
        .outcomes
        .iter()
        .find(|o| !o.ok())
        .expect("the crashed attempt must surface a failed outcome");
    let boundary = failed.verified_blocks * RESUME_BLOCK;
    assert!(
        boundary >= size * 3 / 4,
        "crash fired too early to exercise late resume: verified {boundary} of {size}"
    );

    // The failover attempt announced the resume on the timeline...
    assert!(r.saw(|e| matches!(e, SessionEvent::FailedOver { route: 1 })));
    assert!(r.saw(|e| matches!(e, SessionEvent::Resumed { from_block, .. } if *from_block > 0)));

    // ...and was granted the verified boundary, not byte 0: the re-sent
    // tail stays under 25% of the stream.
    let d = r.delivery().expect("verified delivery");
    assert_eq!(d.bytes, size);
    assert_eq!(d.digest_ok, Some(true));
    assert!(
        d.resume_offset >= boundary,
        "grant {} fell below the verified boundary {boundary}",
        d.resume_offset
    );
    let resent = size - d.resume_offset;
    assert!(
        resent < size / 4,
        "re-sent {resent} of {size} bytes — resume did not engage"
    );
}

#[test]
fn same_seed_fault_runs_are_byte_identical() {
    let a = run_depot_crash(42);
    let b = run_depot_crash(42);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "same seed must replay the same recovery, event for event"
    );

    // And the seed is load-bearing: a different seed shifts packet-level
    // timing, so the trace differs even though the scenario is the same.
    let c = run_depot_crash(43);
    assert_ne!(a.fingerprint(), c.fingerprint());
    assert!(c.completed());
}

#[test]
fn recovery_timeline_is_ordered_and_complete() {
    let r = run_depot_crash(11);
    // Timestamps never go backwards.
    assert!(r.timeline.windows(2).all(|w| w[0].0 <= w[1].0));
    // Lifecycle bookends: an Established first, a Completed last.
    assert!(matches!(
        r.timeline.first(),
        Some((_, SessionEvent::Established))
    ));
    assert!(matches!(
        r.timeline.last(),
        Some((_, SessionEvent::Completed))
    ));
    assert!(r.duration_s > 0.0);
}
