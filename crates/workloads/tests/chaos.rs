//! ISSUE 5 acceptance: the seeded chaos-storm soak. 64 seeds of random
//! fault storms against the failover topology, every run checked against
//! the termination / typed-outcome / no-reverified-block / invariants
//! contract, with every `FaultKind` exercised somewhere in the batch —
//! plus the campaign-level determinism guarantee across job counts.

use std::collections::BTreeSet;

use lsl_session::SessionEvent;
use lsl_workloads::{default_jobs, run_chaos_campaign, ChaosConfig};

#[test]
fn chaos_soak_64_seeds_pass_contract_and_cover_every_fault_kind() {
    let cfg = ChaosConfig::default();
    let runs = run_chaos_campaign(&cfg, 64, default_jobs());
    assert_eq!(runs.len(), 64);

    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
    for r in &runs {
        assert!(
            r.ok(),
            "seed {} violated the contract: {:?}\n{}",
            r.seed,
            r.violations,
            r.fingerprint()
        );
        kinds.extend(r.kinds());
    }
    for k in ["LinkDown", "LinkUp", "NodeDown", "NodeUp", "SublinkRst"] {
        assert!(kinds.contains(k), "no seed exercised {k}");
    }

    // The soak is only meaningful if the storms actually bite: some
    // seeds must have survived via failover, and some via resume (the
    // tentpole path — a reconnect granted a non-zero offset).
    assert!(runs.iter().any(|r| r
        .timeline
        .iter()
        .any(|(_, e)| matches!(e, SessionEvent::FailedOver { .. }))));
    assert!(runs
        .iter()
        .any(|r| r.timeline.iter().any(
            |(_, e)| matches!(e, SessionEvent::Resumed { from_block, .. } if *from_block > 0)
        )));
}

/// Golden determinism: the campaign's per-seed output is byte-identical
/// whether seeds run sequentially or fanned out over 8 workers.
#[test]
fn chaos_campaign_fingerprints_identical_across_job_counts() {
    let cfg = ChaosConfig::default();
    let seq: Vec<String> = run_chaos_campaign(&cfg, 8, 1)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    let par: Vec<String> = run_chaos_campaign(&cfg, 8, 8)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    assert_eq!(
        seq, par,
        "chaos campaign must be byte-identical at --jobs 1 vs --jobs 8"
    );
}
