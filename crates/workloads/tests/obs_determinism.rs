//! ISSUE 6 acceptance: the observability plane is deterministic.
//!
//! Same seed ⇒ byte-identical span log and metrics snapshot, run after
//! run and whatever the campaign `--jobs` count; the merged Chrome
//! trace built from index-ordered reports is byte-identical too and
//! always passes shape validation. This extends the chaos fingerprint
//! contract (the fingerprint embeds the telemetry digest).

use lsl_obs::export::{chrome_trace_json, validate_chrome_trace};
use lsl_workloads::{run_chaos_campaign, run_chaos_seed, ChaosConfig};

fn quick_cfg() -> ChaosConfig {
    ChaosConfig {
        size: 256 * 1024,
        ..ChaosConfig::default()
    }
}

#[test]
fn same_seed_telemetry_is_byte_identical() {
    let cfg = quick_cfg();
    for seed in [1u64, 3, 7] {
        let a = run_chaos_seed(&cfg, seed);
        let b = run_chaos_seed(&cfg, seed);
        assert!(!a.obs.is_empty(), "seed {seed} recorded no telemetry");
        // Full canonical rendering: every span line and every metric.
        assert_eq!(
            a.obs.render(),
            b.obs.render(),
            "seed {seed}: span log / metrics snapshot differ across reruns"
        );
        assert_eq!(a.obs.digest(), b.obs.digest());
    }
}

#[test]
fn telemetry_identical_across_job_counts() {
    let cfg = quick_cfg();
    let seq = run_chaos_campaign(&cfg, 8, 1);
    let par = run_chaos_campaign(&cfg, 8, 8);
    for (a, b) in seq.iter().zip(par.iter()) {
        assert_eq!(
            a.obs.render(),
            b.obs.render(),
            "seed {}: telemetry must not depend on --jobs",
            a.seed
        );
    }
    // Index-ordered merge: the combined perfetto trace is one artifact,
    // byte-identical whichever worker produced each report.
    let merge = |runs: &[lsl_workloads::ChaosRun]| {
        let labelled: Vec<(String, &lsl_obs::ObsReport)> = runs
            .iter()
            .map(|r| (format!("chaos seed {}", r.seed), &r.obs))
            .collect();
        chrome_trace_json(&labelled)
    };
    let j1 = merge(&seq);
    let j8 = merge(&par);
    assert_eq!(j1, j8, "merged chrome trace must be byte-identical");
    validate_chrome_trace(&j1).expect("merged trace passes shape validation");
}

#[test]
fn span_log_is_time_ordered_and_instrumentation_covers_the_ladder() {
    // One stormy seed: spans must be nondecreasing in sim time, and the
    // instrumented surface (sublink establish, verdict drain, depot
    // relay occupancy) must actually appear.
    let r = run_chaos_seed(&quick_cfg(), 3);
    let spans = &r.obs.spans;
    assert!(spans.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    for name in [
        "session.client",
        "session.attempt",
        "session.sublink.establish",
        "sink.verdict.drain",
        "depot.relay",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "no `{name}` span in seed 3's log"
        );
    }
    assert!(r.obs.metrics.hist("tcp.cwnd").is_some(), "cwnd samples");
}
