//! Striped-session soak acceptance: 64 seeds of random fault storms —
//! each with a guaranteed targeted mid-transfer kill of one depot —
//! against the three-depot striping topology. Every run is checked
//! against the striped contract, whose load-bearing clause is the
//! **zero-verified-resend guarantee**: the sink's `stripe_regrants`
//! counter (grants that still contained a verified block) must be zero
//! for every seed, however many cascades died.

use std::collections::BTreeSet;

use lsl_session::SessionEvent;
use lsl_workloads::{default_jobs, run_striped_campaign, StripedChaosConfig};

#[test]
fn striped_soak_64_seeds_never_resend_a_verified_block() {
    let cfg = StripedChaosConfig::default();
    let runs = run_striped_campaign(&cfg, 64, default_jobs());
    assert_eq!(runs.len(), 64);

    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
    for r in &runs {
        assert!(
            r.ok(),
            "seed {} violated the striped contract: {:?}\n{}",
            r.seed,
            r.violations,
            r.fingerprint()
        );
        // The contract already folds this in; assert it explicitly so a
        // future contract refactor can't silently drop the clause.
        assert_eq!(
            r.regrants, 0,
            "seed {}: a stripe grant contained a verified block",
            r.seed
        );
        kinds.extend(r.kinds());
    }
    for k in ["LinkDown", "LinkUp", "NodeDown", "SublinkRst"] {
        assert!(kinds.contains(k), "no seed exercised {k}");
    }

    // The soak is only meaningful if cascade death actually bites: some
    // seeds must have lost a lane outright and re-striped its blocks
    // onto survivors, and some must have completed despite it.
    let lost = runs.iter().any(|r| {
        r.timeline
            .iter()
            .any(|(_, e)| matches!(e, SessionEvent::StripeLost { .. }))
    });
    let rebalanced = runs.iter().any(|r| {
        r.timeline
            .iter()
            .any(|(_, e)| matches!(e, SessionEvent::StripeRebalanced { .. }))
    });
    assert!(lost, "no seed ever killed a cascade outright");
    assert!(rebalanced, "no survivor ever picked up re-striped blocks");
    assert!(
        runs.iter().filter(|r| r.completed()).count() >= 48,
        "too few seeds completed: {}",
        runs.iter().filter(|r| r.completed()).count()
    );

    // Work stealing and redundant tail dispatch must both have fired
    // somewhere in the batch — the dispatcher's other two arms.
    assert!(runs
        .iter()
        .any(|r| r.lanes.iter().any(|l| l.blocks_stolen > 0)));
    assert!(runs
        .iter()
        .any(|r| r.lanes.iter().any(|l| l.redundant_attempts > 0)));
}
