//! The tentpole guarantee of the campaign executor: the job count is
//! invisible in the output. Result vectors must be bitwise-identical
//! and rendered `.dat` files byte-identical between `jobs = 1` and
//! `jobs = 4`.

use std::fs;

use lsl_bench::traced_runs;
use lsl_trace::export::write_dat;
use lsl_trace::seq_growth;
use lsl_workloads::{
    case1, run_campaign, run_transfer, sweep_sizes, sweep_sizes_jobs, Mode, RunConfig,
};

#[test]
fn campaign_results_identical_across_job_counts() {
    let case = case1();
    let run = |jobs| {
        run_campaign(6, jobs, |i| {
            let r = run_transfer(
                &case,
                &RunConfig::builder(128 << 10, Mode::ViaDepot)
                    .seed(500 + i as u64)
                    .build(),
            );
            (
                r.goodput_bps.to_bits(),
                r.retransmissions,
                r.duration_s.to_bits(),
            )
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn traced_runs_identical_across_job_counts() {
    let case = case1();
    let seq = traced_runs(&case, 256 << 10, Mode::ViaDepot, 4, 800, 1);
    let par = traced_runs(&case, 256 << 10, Mode::ViaDepot, 4, 800, 4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(par.iter()) {
        assert_eq!(a.goodput_bps.to_bits(), b.goodput_bps.to_bits());
        assert_eq!(a.retransmissions, b.retransmissions);
        assert_eq!(seq_growth(&a.first).points(), seq_growth(&b.first).points());
    }
}

/// Render the same small bandwidth figure at jobs=1 and jobs=4 and
/// compare the `.dat` files byte for byte.
#[test]
fn dat_output_is_byte_identical_across_job_counts() {
    let case = case1();
    let sizes = [32 << 10, 128 << 10];
    let render = |jobs: usize| -> Vec<u8> {
        let pts = sweep_sizes_jobs(&case, &sizes, Mode::ViaDepot, 3, 2000, jobs);
        let curve: Vec<(f64, f64)> = pts
            .iter()
            .map(|p| (p.size as f64 / 1024.0, p.mean_bps / 1e6))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "lsl-parallel-dat-{}-jobs{jobs}",
            std::process::id()
        ));
        write_dat(&dir, "figtest", &[("lsl", curve.as_slice())]).expect("write dat");
        let bytes = fs::read(dir.join("figtest.dat")).expect("read dat");
        fs::remove_dir_all(&dir).ok();
        bytes
    };
    let seq = render(1);
    let par = render(4);
    assert!(!seq.is_empty());
    assert_eq!(seq, par, ".dat bytes must not depend on --jobs");
    // And the sequential entry point is the jobs=1 path.
    let a = sweep_sizes(&case, &sizes, Mode::Direct, 2, 3000);
    let b = sweep_sizes_jobs(&case, &sizes, Mode::Direct, 2, 3000, 4);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.mean_bps.to_bits(), y.mean_bps.to_bits());
    }
}
