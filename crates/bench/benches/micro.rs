//! Micro-benchmarks for the building blocks: digest, codecs, simulator
//! event rate, TCP transfer rate, depot relay, forecasting, campaign
//! scaling.
//!
//! Self-contained `harness = false` runner (no criterion: the build
//! environment is offline). Each benchmark is calibrated to the
//! measurement window, then timed over three fixed-count passes and
//! reported as the median ns/iter (plus MB/s where a byte throughput
//! is meaningful). Invoke with `cargo bench -p lsl-bench`; with
//! `BENCH_SMOKE=1` each benchmark runs a single smoke iteration.
//!
//! Either way the run emits `BENCH_netsim.json` at the workspace root:
//! a machine-readable perf trajectory (simulator events/sec, transfer
//! wall time, campaign wall time at 1 and N jobs) that CI checks for
//! shape and future PRs diff against. `BASELINE` pins the numbers
//! recorded just before the event-engine hot-path work so the
//! improvement stays visible in the artifact itself.

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use bytes::Bytes;
use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Packet, TopologyBuilder};
use lsl_nws::AdaptiveMixture;
use lsl_session::{Hop, LslHeader, SessionId};
use lsl_tcp::Segment;
use lsl_workloads::{case1, default_jobs, run_campaign, run_transfer, Mode, RunConfig};

/// Wall time per measured pass; three passes are taken per benchmark.
const TARGET_MEASURE_S: f64 = 0.25;
/// Hard ceiling on the per-pass iteration count.
const MAX_ITERS: u64 = 1 << 24;

/// Perf figures recorded on this host immediately before the
/// event-engine hot-path refactor (BTreeMap route table, BTreeSet
/// timer registry, copying `Bytes`), for trajectory context in the
/// emitted JSON.
const BASELINE_EVENTS_PER_SEC: f64 = 1_222_643.0;
const BASELINE_RUN_WALL_S_1MB_DIRECT: f64 = 0.006019;
/// Timer-heavy churn rate recorded immediately before the scheduler
/// overhaul (global `BinaryHeap`, cancelled timers lazily popped).
const BASELINE_TIMER_EVENTS_PER_SEC: f64 = 2_794_769.0;

struct Bench {
    smoke: bool,
}

impl Bench {
    fn new() -> Bench {
        // NOTE: cargo compiles `[[bench]]` targets with `--cfg test`
        // even when `harness = false`, so a `cfg!(test)` check here
        // would be *always* true and silently turn `cargo bench` into
        // a smoke run. Smoke mode is therefore opt-in by env only.
        let smoke = std::env::var_os("BENCH_SMOKE").is_some();
        Bench { smoke }
    }

    /// Time `f`, returning the median ns/iter of three measured passes
    /// (or a single rough pass in smoke mode).
    fn run<T>(&self, name: &str, bytes_per_iter: Option<u64>, mut f: impl FnMut() -> T) -> f64 {
        if self.smoke {
            let t0 = Instant::now();
            black_box(f());
            let ns = t0.elapsed().as_secs_f64() * 1e9;
            println!("{name:<40} smoke ok");
            return ns;
        }
        // Calibration: probe until one batch takes >= ~1 ms of wall
        // time, scaling the iteration count from the *measured* rate
        // (clamped to x2..x100 per step) rather than a blind fixed
        // multiplier — a fixed x4 can overshoot the whole measurement
        // window on fast machines once the batch is near the target.
        let mut iters: u64 = 1;
        let per_iter_s = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= 1e-3 || iters >= MAX_ITERS {
                break dt / iters as f64;
            }
            let grow = if dt > 0.0 {
                ((1e-3 / dt) * 1.5) as u64
            } else {
                100
            };
            iters = iters.saturating_mul(grow.clamp(2, 100)).min(MAX_ITERS);
        };
        // Measured passes: a fixed iteration count sized to the window,
        // so a pass cannot overshoot by an extra batch.
        let pass_iters =
            ((TARGET_MEASURE_S / per_iter_s.max(1e-12)).ceil() as u64).clamp(1, MAX_ITERS);
        let mut passes = [0.0f64; 3];
        for p in &mut passes {
            let t0 = Instant::now();
            for _ in 0..pass_iters {
                black_box(f());
            }
            *p = t0.elapsed().as_secs_f64() * 1e9 / pass_iters as f64;
        }
        passes.sort_by(|a, b| a.total_cmp(b));
        let ns_per_iter = passes[1];
        match bytes_per_iter {
            Some(b) => {
                let mbps = b as f64 * 1e9 / ns_per_iter / 1e6;
                println!("{name:<40} {ns_per_iter:>12.0} ns/iter {mbps:>10.1} MB/s");
            }
            None => println!("{name:<40} {ns_per_iter:>12.0} ns/iter"),
        }
        ns_per_iter
    }
}

fn bench_md5(b: &Bench) {
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let data = vec![0xa5u8; size];
        b.run(&format!("md5/{size}"), Some(size as u64), || {
            lsl_digest::md5(&data)
        });
    }
}

fn bench_codecs(b: &Bench) {
    let seg = Segment {
        src_port: 40000,
        dst_port: 5001,
        seq: 123456789,
        ack: 987654321,
        flags: lsl_tcp::Flags::ACK,
        wnd: 8 << 20,
        mss: None,
    };
    b.run("segment_encode_decode", None, || {
        let e = seg.encode();
        Segment::decode(&e).expect("valid")
    });
    let header = LslHeader {
        session: SessionId(42),
        flags: 1,
        length: 64 << 20,
        resume: None,
        stripe: None,
        route: vec![Hop::new(NodeId(1), 7001), Hop::new(NodeId(2), 5001)],
    };
    b.run("lsl_header_encode_decode", None, || {
        let e = header.encode().expect("encodable");
        LslHeader::decode(&e).expect("valid").expect("complete")
    });
}

/// One pass of the event-rate scenario: 1000 packets through a lossy
/// 2-hop path. Returns the number of `sim.next()` events processed.
fn event_rate_scenario() -> u64 {
    let mut tb = TopologyBuilder::new();
    let a = tb.node("a");
    let r = tb.node("r");
    let z = tb.node("z");
    tb.duplex(a, r, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
    tb.duplex(
        r,
        z,
        LinkSpec::new(1_000_000_000, Dur::from_micros(100)).with_loss(LossModel::bernoulli(0.01)),
    );
    let mut sim = tb.build().into_sim(1);
    for _ in 0..1000 {
        sim.send(
            a,
            Packet::tcp(a, z, Bytes::new(), Bytes::from_static(&[0u8; 1000])),
        );
    }
    let mut n = 0u64;
    while sim.next().is_some() {
        n += 1;
    }
    n
}

/// Raw event-loop rate; returns events/sec.
fn bench_simulator_events(b: &Bench) -> f64 {
    let events_per_run = event_rate_scenario();
    let ns_per_iter = b.run("netsim_1000_packets_2hop", None, event_rate_scenario);
    events_per_run as f64 * 1e9 / ns_per_iter.max(1e-9)
}

/// Timer-heavy scenario: 2000 timers held armed with RTO-style churn
/// (every fire cancels a pseudo-random victim and re-arms it plus
/// itself, every 4th fire sends a packet), 10k fire budget, then drain.
/// This is the workload shape a chaos campaign imposes — dominated by
/// arm/cancel/fire traffic rather than packet serialization — and the
/// one the scheduler's cancelled-entry handling shows up in. Returns
/// the number of externally visible events processed.
fn timer_heavy_scenario() -> u64 {
    const ARMED: u64 = 2_000;
    const FIRE_BUDGET: u64 = 10_000;
    let spread = |i: u64, salt: u64| {
        let h = (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt).wrapping_mul(0x2545_f491_4f6c_dd1d);
        Dur::from_micros(500 + h % 100_000)
    };
    let mut tb = TopologyBuilder::new();
    let a = tb.node("a");
    let r = tb.node("r");
    let z = tb.node("z");
    tb.duplex(a, r, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
    tb.duplex(
        r,
        z,
        LinkSpec::new(1_000_000_000, Dur::from_micros(100)).with_loss(LossModel::bernoulli(0.01)),
    );
    let mut sim = tb.build().into_sim(1);
    let mut handles = Vec::with_capacity(ARMED as usize);
    for i in 0..ARMED {
        handles.push(sim.set_timer(a, lsl_netsim::Time::ZERO + spread(i, 1), i));
    }
    let mut fires = 0u64;
    let mut n = 0u64;
    while let Some(out) = sim.next() {
        n += 1;
        if let lsl_netsim::Output::Timer { token, .. } = out {
            fires += 1;
            if fires <= FIRE_BUDGET {
                let victim = fires.wrapping_mul(31) % ARMED;
                sim.cancel_timer(handles[victim as usize]);
                handles[victim as usize] = sim.set_timer(a, sim.now() + spread(fires, 2), victim);
                if victim != token {
                    handles[token as usize] = sim.set_timer(a, sim.now() + spread(fires, 3), token);
                }
                if fires.is_multiple_of(4) {
                    sim.send(
                        a,
                        Packet::tcp(a, z, Bytes::new(), Bytes::from_static(&[0u8; 300])),
                    );
                }
            }
        }
    }
    n
}

/// Timer-heavy event rate; returns events/sec.
fn bench_simulator_timer_events(b: &Bench) -> f64 {
    let events_per_run = timer_heavy_scenario();
    let ns_per_iter = b.run("netsim_timer_heavy_churn", None, timer_heavy_scenario);
    events_per_run as f64 * 1e9 / ns_per_iter.max(1e-9)
}

/// End-to-end simulated transfers; returns (direct, via-depot) wall
/// seconds per 1 MB run.
fn bench_tcp_transfer(b: &Bench) -> (f64, f64) {
    let case = case1();
    let direct = b.run("sim_transfer_1MB/direct", Some(1 << 20), || {
        run_transfer(
            &case,
            &RunConfig::builder(1 << 20, Mode::Direct).seed(1).build(),
        )
        .duration_s
    });
    let depot = b.run("sim_transfer_1MB/via_depot", Some(1 << 20), || {
        run_transfer(
            &case,
            &RunConfig::builder(1 << 20, Mode::ViaDepot).seed(1).build(),
        )
        .duration_s
    });
    (direct / 1e9, depot / 1e9)
}

fn bench_forecasting(b: &Bench) {
    b.run("nws_mixture_update_x100", None, || {
        let mut m = AdaptiveMixture::standard();
        for i in 0..100 {
            m.update(10.0 + (i % 7) as f64);
        }
        m.predict()
    });
}

fn bench_realnet_relay(b: &Bench) {
    use lsl_realnet::{LsdServer, LslListener, LslStream};
    use std::net::Ipv4Addr;
    let depot = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).expect("spawn depot");
    let depot_addr = depot.addr();
    b.run("realnet_relay_1MB/loopback_cascade", Some(1 << 20), || {
        let listener = LslListener::bind((Ipv4Addr::LOCALHOST, 0).into()).expect("bind");
        let sink_addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let payload = vec![0x5au8; 1 << 20];
            let mut s = LslStream::connect(
                SessionId(1),
                &[depot_addr],
                sink_addr,
                payload.len() as u64,
                true,
                true,
            )
            .expect("connect");
            s.write_all(&payload).expect("write");
            s.finish().expect("finish");
        });
        let (data, ok) = listener.accept().expect("accept").read_all().expect("read");
        t.join().expect("join");
        assert_eq!(ok, Some(true));
        data.len()
    });
}

/// Campaign scaling: the same 8-run transfer campaign executed at
/// jobs=1 and jobs=N. Returns (n, wall_s at 1 job, wall_s at N jobs);
/// both campaigns produce bitwise-identical result vectors, so the
/// only difference is wall time.
fn bench_campaign(b: &Bench) -> (usize, f64, f64) {
    let case = case1();
    let runs = if b.smoke { 2 } else { 8 };
    let campaign = |jobs: usize| {
        run_campaign(runs, jobs, |i| {
            run_transfer(
                &case,
                &RunConfig::builder(256 << 10, Mode::ViaDepot)
                    .seed(100 + i as u64)
                    .build(),
            )
            .goodput_bps
        })
    };
    let n = default_jobs().max(4);
    let time = |jobs: usize| {
        let passes = if b.smoke { 1 } else { 3 };
        let mut walls: Vec<f64> = (0..passes)
            .map(|_| {
                let t0 = Instant::now();
                black_box(campaign(jobs));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        walls.sort_by(|a, b| a.total_cmp(b));
        walls[walls.len() / 2]
    };
    let w1 = time(1);
    let wn = time(n);
    let seq = campaign(1);
    let par = campaign(n);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(par.iter()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "campaign output must not depend on jobs"
        );
    }
    println!(
        "campaign_{runs}x256KB/jobs1_vs_jobs{n}       {:>9.3} s vs {:>9.3} s ({:.2}x)",
        w1,
        wn,
        w1 / wn.max(1e-9)
    );
    (n, w1, wn)
}

/// Hand-rolled JSON emission (offline build: no serde). Written to the
/// workspace root so the trajectory lives next to the sources it
/// measures; override the path with `BENCH_OUT`.
#[allow(clippy::too_many_arguments)]
fn write_json(
    smoke: bool,
    events_per_sec: f64,
    timer_events_per_sec: f64,
    direct_s: f64,
    depot_s: f64,
    jobs_n: usize,
    campaign_wall_s_jobs1: f64,
    campaign_wall_s_jobs_n: f64,
) {
    let path = std::env::var_os("BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_netsim.json")
        });
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"smoke\": {smoke},\n  \"netsim_events_per_sec\": {events_per_sec:.0},\n  \"netsim_timer_events_per_sec\": {timer_events_per_sec:.0},\n  \"run_wall_s_1mb_direct\": {direct_s:.6},\n  \"run_wall_s_1mb_depot\": {depot_s:.6},\n  \"campaign_jobs\": {jobs_n},\n  \"campaign_wall_s_jobs1\": {campaign_wall_s_jobs1:.6},\n  \"campaign_wall_s_jobsN\": {campaign_wall_s_jobs_n:.6},\n  \"baseline\": {{\n    \"netsim_events_per_sec\": {BASELINE_EVENTS_PER_SEC:.0},\n    \"netsim_timer_events_per_sec\": {BASELINE_TIMER_EVENTS_PER_SEC:.0},\n    \"run_wall_s_1mb_direct\": {BASELINE_RUN_WALL_S_1MB_DIRECT:.6}\n  }}\n}}\n"
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let b = Bench::new();
    bench_md5(&b);
    bench_codecs(&b);
    let events_per_sec = bench_simulator_events(&b);
    let timer_events_per_sec = bench_simulator_timer_events(&b);
    let (direct_s, depot_s) = bench_tcp_transfer(&b);
    bench_forecasting(&b);
    bench_realnet_relay(&b);
    let (jobs_n, w1, wn) = bench_campaign(&b);
    write_json(
        b.smoke,
        events_per_sec,
        timer_events_per_sec,
        direct_s,
        depot_s,
        jobs_n,
        w1,
        wn,
    );
}
