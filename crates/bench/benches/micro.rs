//! Micro-benchmarks for the building blocks: digest, codecs, simulator
//! event rate, TCP transfer rate, depot relay, forecasting.
//!
//! Self-contained `harness = false` runner (no criterion: the build
//! environment is offline). Each benchmark is timed with a warmup pass
//! and a measured pass; results print as ns/iter plus MB/s where a byte
//! throughput is meaningful. Invoke with `cargo bench -p lsl-bench`;
//! under `cargo test` the benchmarks run a single smoke iteration each.

use std::hint::black_box;
use std::time::Instant;

use bytes::Bytes;
use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Packet, TopologyBuilder};
use lsl_nws::AdaptiveMixture;
use lsl_session::{Hop, LslHeader, SessionId};
use lsl_tcp::Segment;
use lsl_workloads::{case1, run_transfer, Mode, RunConfig};

/// Minimum measured wall time per benchmark before reporting.
const TARGET_MEASURE_S: f64 = 0.25;

struct Bench {
    smoke: bool,
}

impl Bench {
    fn new() -> Bench {
        // Under `cargo test` (or BENCH_SMOKE=1) just prove each benchmark
        // runs; full timing is for `cargo bench`.
        let smoke = cfg!(test) || std::env::var_os("BENCH_SMOKE").is_some();
        Bench { smoke }
    }

    fn run<T>(&self, name: &str, bytes_per_iter: Option<u64>, mut f: impl FnMut() -> T) {
        if self.smoke {
            black_box(f());
            println!("{name:<40} smoke ok");
            return;
        }
        // Warmup & calibration: find an iteration count that fills the
        // measurement window.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= TARGET_MEASURE_S / 4.0 || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 4).min(1 << 24);
        }
        let t0 = Instant::now();
        let mut done: u64 = 0;
        while t0.elapsed().as_secs_f64() < TARGET_MEASURE_S {
            for _ in 0..iters {
                black_box(f());
            }
            done += iters;
        }
        let total = t0.elapsed().as_secs_f64();
        let ns_per_iter = total * 1e9 / done as f64;
        match bytes_per_iter {
            Some(b) => {
                let mbps = b as f64 * done as f64 / total / 1e6;
                println!("{name:<40} {ns_per_iter:>12.0} ns/iter {mbps:>10.1} MB/s");
            }
            None => println!("{name:<40} {ns_per_iter:>12.0} ns/iter"),
        }
    }
}

fn bench_md5(b: &Bench) {
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let data = vec![0xa5u8; size];
        b.run(&format!("md5/{size}"), Some(size as u64), || {
            lsl_digest::md5(&data)
        });
    }
}

fn bench_codecs(b: &Bench) {
    let seg = Segment {
        src_port: 40000,
        dst_port: 5001,
        seq: 123456789,
        ack: 987654321,
        flags: lsl_tcp::Flags::ACK,
        wnd: 8 << 20,
        mss: None,
    };
    b.run("segment_encode_decode", None, || {
        let e = seg.encode();
        Segment::decode(&e).expect("valid")
    });
    let header = LslHeader {
        session: SessionId(42),
        flags: 1,
        length: 64 << 20,
        route: vec![Hop::new(NodeId(1), 7001), Hop::new(NodeId(2), 5001)],
    };
    b.run("lsl_header_encode_decode", None, || {
        let e = header.encode();
        LslHeader::decode(&e).expect("valid").expect("complete")
    });
}

fn bench_simulator_events(b: &Bench) {
    // Raw event-loop rate: 1000 packets through a 2-hop path.
    b.run("netsim_1000_packets_2hop", None, || {
        let mut tb = TopologyBuilder::new();
        let a = tb.node("a");
        let r = tb.node("r");
        let z = tb.node("z");
        tb.duplex(a, r, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
        tb.duplex(
            r,
            z,
            LinkSpec::new(1_000_000_000, Dur::from_micros(100))
                .with_loss(LossModel::bernoulli(0.01)),
        );
        let mut sim = tb.build().into_sim(1);
        for _ in 0..1000 {
            sim.send(
                a,
                Packet::tcp(a, z, Bytes::new(), Bytes::from_static(&[0u8; 1000])),
            );
        }
        let mut n = 0u32;
        while sim.next().is_some() {
            n += 1;
        }
        n
    });
}

fn bench_tcp_transfer(b: &Bench) {
    let case = case1();
    b.run("sim_transfer_1MB/direct", Some(1 << 20), || {
        run_transfer(&case, &RunConfig::new(1 << 20, Mode::Direct, 1)).duration_s
    });
    b.run("sim_transfer_1MB/via_depot", Some(1 << 20), || {
        run_transfer(&case, &RunConfig::new(1 << 20, Mode::ViaDepot, 1)).duration_s
    });
}

fn bench_forecasting(b: &Bench) {
    b.run("nws_mixture_update_x100", None, || {
        let mut m = AdaptiveMixture::standard();
        for i in 0..100 {
            m.update(10.0 + (i % 7) as f64);
        }
        m.predict()
    });
}

fn bench_realnet_relay(b: &Bench) {
    use lsl_realnet::{LsdServer, LslListener, LslStream};
    use std::io::Write as _;
    use std::net::Ipv4Addr;
    let depot = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).expect("spawn depot");
    let depot_addr = depot.addr();
    b.run("realnet_relay_1MB/loopback_cascade", Some(1 << 20), || {
        let listener = LslListener::bind((Ipv4Addr::LOCALHOST, 0).into()).expect("bind");
        let sink_addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let payload = vec![0x5au8; 1 << 20];
            let mut s = LslStream::connect(
                SessionId(1),
                &[depot_addr],
                sink_addr,
                payload.len() as u64,
                true,
                true,
            )
            .expect("connect");
            s.write_all(&payload).expect("write");
            s.finish().expect("finish");
        });
        let (data, ok) = listener.accept().expect("accept").read_all().expect("read");
        t.join().expect("join");
        assert_eq!(ok, Some(true));
        data.len()
    });
}

fn main() {
    let b = Bench::new();
    bench_md5(&b);
    bench_codecs(&b);
    bench_simulator_events(&b);
    bench_tcp_transfer(&b);
    bench_forecasting(&b);
    bench_realnet_relay(&b);
}
