//! Criterion micro-benchmarks for the building blocks: digest, codecs,
//! simulator event rate, TCP transfer rate, depot relay, forecasting.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Packet, TopologyBuilder};
use lsl_nws::AdaptiveMixture;
use lsl_session::{Hop, LslHeader, SessionId};
use lsl_tcp::Segment;
use lsl_workloads::{case1, run_transfer, Mode, RunConfig};

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| lsl_digest::md5(d));
        });
    }
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let seg = Segment {
        src_port: 40000,
        dst_port: 5001,
        seq: 123456789,
        ack: 987654321,
        flags: lsl_tcp::Flags::ACK,
        wnd: 8 << 20,
        mss: None,
    };
    c.bench_function("segment_encode_decode", |b| {
        b.iter(|| {
            let e = seg.encode();
            Segment::decode(&e).expect("valid")
        })
    });
    let header = LslHeader {
        session: SessionId(42),
        flags: 1,
        length: 64 << 20,
        route: vec![Hop::new(NodeId(1), 7001), Hop::new(NodeId(2), 5001)],
    };
    c.bench_function("lsl_header_encode_decode", |b| {
        b.iter(|| {
            let e = header.encode();
            LslHeader::decode(&e).expect("valid").expect("complete")
        })
    });
}

fn bench_simulator_events(c: &mut Criterion) {
    // Raw event-loop rate: 1000 packets through a 2-hop path.
    c.bench_function("netsim_1000_packets_2hop", |b| {
        b.iter(|| {
            let mut tb = TopologyBuilder::new();
            let a = tb.node("a");
            let r = tb.node("r");
            let z = tb.node("z");
            tb.duplex(a, r, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
            tb.duplex(
                r,
                z,
                LinkSpec::new(1_000_000_000, Dur::from_micros(100))
                    .with_loss(LossModel::bernoulli(0.01)),
            );
            let mut sim = tb.build().into_sim(1);
            for _ in 0..1000 {
                sim.send(a, Packet::tcp(a, z, Bytes::new(), Bytes::from_static(&[0u8; 1000])));
            }
            let mut n = 0u32;
            while sim.next().is_some() {
                n += 1;
            }
            n
        })
    });
}

fn bench_tcp_transfer(c: &mut Criterion) {
    let case = case1();
    let mut g = c.benchmark_group("sim_transfer_1MB");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("direct", |b| {
        b.iter(|| run_transfer(&case, &RunConfig::new(1 << 20, Mode::Direct, 1)).duration_s)
    });
    g.bench_function("via_depot", |b| {
        b.iter(|| run_transfer(&case, &RunConfig::new(1 << 20, Mode::ViaDepot, 1)).duration_s)
    });
    g.finish();
}

fn bench_forecasting(c: &mut Criterion) {
    c.bench_function("nws_mixture_update_x100", |b| {
        b.iter(|| {
            let mut m = AdaptiveMixture::standard();
            for i in 0..100 {
                m.update(10.0 + (i % 7) as f64);
            }
            m.predict()
        })
    });
}

fn bench_realnet_relay(c: &mut Criterion) {
    use lsl_realnet::{LsdServer, LslListener, LslStream};
    use std::io::Write as _;
    use std::net::Ipv4Addr;
    let depot = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).expect("spawn depot");
    let depot_addr = depot.addr();
    let mut g = c.benchmark_group("realnet_relay_1MB");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("loopback_cascade", |b| {
        b.iter(|| {
            let listener = LslListener::bind((Ipv4Addr::LOCALHOST, 0).into()).expect("bind");
            let sink_addr = listener.local_addr().expect("addr");
            let t = std::thread::spawn(move || {
                let payload = vec![0x5au8; 1 << 20];
                let mut s = LslStream::connect(
                    SessionId(1),
                    &[depot_addr],
                    sink_addr,
                    payload.len() as u64,
                    true,
                    true,
                )
                .expect("connect");
                s.write_all(&payload).expect("write");
                s.finish().expect("finish");
            });
            let (data, ok) = listener.accept().expect("accept").read_all().expect("read");
            t.join().expect("join");
            assert_eq!(ok, Some(true));
            data.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_md5,
    bench_codecs,
    bench_simulator_events,
    bench_tcp_transfer,
    bench_forecasting,
    bench_realnet_relay
);
criterion_main!(benches);
