//! Scheduler-scale benchmark: event-engine throughput as a function of
//! armed-timer count and of concurrent-session count.
//!
//! `BENCH_netsim.json`'s events/sec figure measures one fixed small
//! workload; this bench measures how the engine *scales* — the property
//! ROADMAP item 3 (million-session depots) actually needs. Two curves:
//!
//! * **timer curve** — a churn workload holding N timers armed at all
//!   times (every fire cancels one pseudo-random victim and re-arms
//!   two), with delays spread from 1 ms to minutes so every wheel level
//!   and the far-future overflow path is exercised. This is the
//!   RTO-rearm pattern N concurrent TCP flows impose on the engine.
//! * **session curve** — N self-clocked "sessions", each a timer that
//!   sends a packet over a shared 2-hop path and re-arms, mixing
//!   timer-class and link-class events the way a real transfer
//!   campaign does.
//! * **striped sessions/sec** — end-to-end striped transfers through
//!   the full stack on the three-depot topology, with the degraded
//!   single-cascade run as its baseline: the dispatcher's own price.
//!
//! Self-contained `harness = false` runner like `micro.rs` (offline
//! build: no criterion). Emits `BENCH_scale.json` at the workspace root
//! (override with `BENCH_SCALE_OUT`); `BENCH_SMOKE=1` shrinks the event
//! budget to a shape-check. `BASELINE_*` pin the numbers recorded on
//! this host immediately before the scheduler overhaul (single global
//! `BinaryHeap` carrying full event payloads), so the artifact itself
//! shows the trajectory.

use std::hint::black_box;
use std::time::Instant;

use bytes::Bytes;
use lsl_netsim::{
    Dur, LinkSpec, NodeId, Output, Packet, Simulator, StormPlan, Time, TopologyBuilder,
};
use lsl_workloads::{run_striped_storm, striped_case, StripedChaosConfig};

/// Externally visible events to process per measurement (setup excluded).
const EVENT_BUDGET: u64 = 400_000;
const SMOKE_BUDGET: u64 = 4_000;

/// Armed-timer counts for the timer-churn curve.
const TIMER_POINTS: [usize; 4] = [100, 1_000, 10_000, 100_000];
/// Concurrent-session counts for the mixed-workload curve.
const SESSION_POINTS: [usize; 4] = [16, 128, 1_024, 8_192];

/// Baselines recorded against the pre-overhaul engine (global
/// `BinaryHeap<Reverse<HeapEntry>>`, payloads inline in heap entries),
/// same host, same budgets. Index-aligned with the point arrays.
const BASELINE_TIMER_EPS: [f64; 4] = [5_036_958.0, 3_585_315.0, 2_021_984.0, 587_381.0];
const BASELINE_SESSION_EPS: [f64; 4] = [5_433_395.0, 4_266_112.0, 3_784_222.0, 4_439_009.0];

/// Deterministic delay spreader: maps (index, salt) onto 1 ms..=512 ms
/// with every 64th draw stretched into the far-future band (2..=33 s)
/// so the overflow path stays on the measured profile.
fn spread_delay(i: u64, salt: u64) -> Dur {
    let h = (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt).wrapping_mul(0x2545_f491_4f6c_dd1d);
    if i % 64 == 63 {
        Dur::from_millis(2_000 + h % 31_000)
    } else {
        Dur::from_millis(1 + h % 512)
    }
}

/// Hold `armed` timers live while processing `budget` fires: every fire
/// cancels one pseudo-random victim and re-arms both the victim and the
/// fired slot. Returns measured wall seconds.
fn timer_churn(armed: usize, budget: u64) -> f64 {
    let mut b = TopologyBuilder::new();
    let a = b.node("a");
    let z = b.node("z");
    b.duplex(a, z, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
    let mut sim = b.build().into_sim(7);
    let mut handles = Vec::with_capacity(armed);
    for i in 0..armed as u64 {
        handles.push(sim.set_timer(a, Time::ZERO + spread_delay(i, 1), i));
    }
    let mut fires = 0u64;
    let t0 = Instant::now();
    while fires < budget {
        match sim.next() {
            Some(Output::Timer { token, .. }) => {
                fires += 1;
                let victim = ((fires.wrapping_mul(31)) % armed as u64) as usize;
                sim.cancel_timer(handles[victim]);
                handles[victim] =
                    sim.set_timer(a, sim.now() + spread_delay(fires, 2), victim as u64);
                if victim as u64 != token {
                    handles[token as usize] =
                        sim.set_timer(a, sim.now() + spread_delay(fires, 3), token);
                }
            }
            Some(_) => {}
            None => unreachable!("self-sustaining churn ran dry"),
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        sim.pending_timers(),
        armed,
        "churn must hold the armed count"
    );
    black_box(sim.now());
    wall
}

/// `sessions` self-clocked senders: each timer fire sends one 512 B
/// packet a→r→z and re-arms 1..=8 ms out. Counts *all* externally
/// visible events (timers, deliveries) against the budget. Returns
/// (events processed, wall seconds).
fn session_mix(sessions: usize, budget: u64) -> (u64, f64) {
    let mut b = TopologyBuilder::new();
    let a = b.node("a");
    let r = b.node("r");
    let z = b.node("z");
    b.duplex(a, r, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
    b.duplex(r, z, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
    let mut sim = b.build().into_sim(7);
    for s in 0..sessions as u64 {
        sim.set_timer(a, Time::ZERO + Dur::from_micros(1 + (s * 131) % 8_000), s);
    }
    let mut events = 0u64;
    let t0 = Instant::now();
    while events < budget {
        match sim.next() {
            Some(Output::Timer { token, .. }) => {
                events += 1;
                send_session_packet(&mut sim, a, z, token);
                let period = Dur::from_micros(1_000 + (token * 977 + events) % 7_000);
                sim.set_timer(a, sim.now() + period, token);
            }
            Some(_) => events += 1,
            None => unreachable!("self-clocked sessions ran dry"),
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    black_box(sim.now());
    (events, wall)
}

fn send_session_packet(sim: &mut Simulator, a: NodeId, z: NodeId, _session: u64) {
    sim.send(
        a,
        Packet::tcp(a, z, Bytes::new(), Bytes::from_static(&[0u8; 512])),
    );
}

/// End-to-end striped sessions per wall second: `n` calm striped
/// transfers on the three-depot topology driven to verified completion
/// through the full stack (client, depots, sink, block ledger). The
/// `max_cascades = 1` run is the single-cascade baseline — same
/// harness, plain [`SessionClient`](lsl_session::SessionClient) — so
/// the pair prices the dispatcher itself, not the topology.
fn striped_sessions_per_sec(smoke: bool, max_cascades: usize) -> f64 {
    let n: u64 = if smoke { 2 } else { 16 };
    let case = striped_case();
    let mut cfg = StripedChaosConfig {
        size: 256 * 1024,
        ..StripedChaosConfig::default()
    };
    cfg.stripe.max_cascades = max_cascades;
    let t0 = Instant::now();
    for seed in 0..n {
        let r = run_striped_storm(
            &case,
            &cfg,
            StormPlan {
                seed,
                atoms: Vec::new(),
            },
        );
        assert!(r.completed(), "calm striped run failed: {:?}", r.state);
        black_box(r.certified);
    }
    n as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Median-of-3 events/sec for one measurement closure (single pass in
/// smoke mode).
fn median_eps(smoke: bool, mut f: impl FnMut() -> (u64, f64)) -> f64 {
    let passes = if smoke { 1 } else { 3 };
    let mut rates: Vec<f64> = (0..passes)
        .map(|_| {
            let (events, wall) = f();
            events as f64 / wall.max(1e-9)
        })
        .collect();
    rates.sort_by(|x, y| x.total_cmp(y));
    rates[rates.len() / 2]
}

fn write_json(smoke: bool, timer_eps: &[f64], session_eps: &[f64], striped: (f64, f64)) {
    let path = std::env::var_os("BENCH_SCALE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json")
        });
    let curve = |points: &[usize], eps: &[f64], key: &str| -> String {
        points
            .iter()
            .zip(eps)
            .map(|(p, e)| format!("    {{ \"{key}\": {p}, \"events_per_sec\": {e:.0} }}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"smoke\": {smoke},\n  \"timer_curve\": [\n{}\n  ],\n  \"session_curve\": [\n{}\n  ],\n  \"striped\": {{\n    \"sessions_per_sec\": {:.2},\n    \"single_cascade_sessions_per_sec\": {:.2}\n  }},\n  \"baseline\": {{\n    \"timer_curve\": [\n{}\n    ],\n    \"session_curve\": [\n{}\n    ]\n  }}\n}}\n",
        curve(&TIMER_POINTS, timer_eps, "armed"),
        curve(&SESSION_POINTS, session_eps, "sessions"),
        striped.0,
        striped.1,
        curve(&TIMER_POINTS, &BASELINE_TIMER_EPS, "armed")
            .replace("    {", "      {"),
        curve(&SESSION_POINTS, &BASELINE_SESSION_EPS, "sessions")
            .replace("    {", "      {"),
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let budget = if smoke { SMOKE_BUDGET } else { EVENT_BUDGET };

    let mut timer_eps = Vec::new();
    for (i, &armed) in TIMER_POINTS.iter().enumerate() {
        let eps = median_eps(smoke, || (budget, timer_churn(armed, budget)));
        println!(
            "scale/timer_churn/{armed:<7} {eps:>12.0} events/sec  (baseline {:.0})",
            BASELINE_TIMER_EPS[i]
        );
        timer_eps.push(eps);
    }

    let mut session_eps = Vec::new();
    for (i, &sessions) in SESSION_POINTS.iter().enumerate() {
        let eps = median_eps(smoke, || session_mix(sessions, budget));
        println!(
            "scale/session_mix/{sessions:<6} {eps:>12.0} events/sec  (baseline {:.0})",
            BASELINE_SESSION_EPS[i]
        );
        session_eps.push(eps);
    }

    let striped = striped_sessions_per_sec(smoke, 3);
    let single = striped_sessions_per_sec(smoke, 1);
    println!("scale/striped_sessions   {striped:>12.2} sessions/sec  (single-cascade {single:.2})");

    write_json(smoke, &timer_eps, &session_eps, (striped, single));
}
