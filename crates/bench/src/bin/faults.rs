//! Fault-campaign driver: run the scripted failure scenarios against
//! the recovering session layer and export the recovery timelines.
//!
//! ```text
//! cargo run -p lsl-bench --bin faults              # all scenarios
//! cargo run -p lsl-bench --bin faults -- --smoke   # CI gate: 1 crash + 1 flap
//! cargo run -p lsl-bench --bin faults -- --seeds 5
//! ```
//!
//! Per scenario: the timestamped [`SessionEvent`] timeline on stdout, a
//! `results/faults_<scenario>.dat` timeline export (seed 0), and one
//! summary row (terminal state, route used, recovery events, duration).
//! `--smoke` runs the depot-crash and access-flap scenarios once and
//! exits non-zero unless both complete with the expected recovery
//! shape — the cheap end-to-end proof that fault injection, typed error
//! reporting, and recovery still compose.

use lsl_session::SessionEvent;
use lsl_trace::export::write_timeline_dat;
use lsl_workloads::faults::{
    run_access_flap, run_all_depots_down, run_depot_crash, run_sublink_rst, FaultRunResult,
};

struct Scenario {
    name: &'static str,
    run: fn(u64) -> FaultRunResult,
    expect: fn(&FaultRunResult) -> Result<(), &'static str>,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "depot-crash",
        run: run_depot_crash,
        expect: |r| {
            if !r.completed() {
                return Err("did not complete");
            }
            if !r.saw(|e| matches!(e, SessionEvent::FailedOver { .. })) {
                return Err("never failed over to the backup depot");
            }
            if r.delivery().and_then(|d| d.digest_ok) != Some(true) {
                return Err("digest not verified after failover");
            }
            Ok(())
        },
    },
    Scenario {
        name: "access-flap",
        run: run_access_flap,
        expect: |r| {
            if !r.completed() {
                return Err("did not complete");
            }
            if !r.saw(|e| matches!(e, SessionEvent::Reconnecting { .. })) {
                return Err("rode out the flap without reconnecting (outage too short?)");
            }
            Ok(())
        },
    },
    Scenario {
        name: "all-depots-down",
        run: run_all_depots_down,
        expect: |r| {
            if !r.completed() {
                return Err("did not complete");
            }
            if !r.saw(|e| matches!(e, SessionEvent::Degraded)) {
                return Err("never degraded to the direct path");
            }
            Ok(())
        },
    },
    Scenario {
        name: "sublink-rst",
        run: run_sublink_rst,
        expect: |r| {
            if !r.completed() {
                return Err("did not complete");
            }
            if r.saw(|e| matches!(e, SessionEvent::FailedOver { .. } | SessionEvent::Degraded)) {
                return Err("an RST should be survivable on the primary route");
            }
            Ok(())
        },
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seeds = 1u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seeds" {
            seeds = it
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--seeds requires a positive integer");
                    std::process::exit(2);
                });
        }
    }

    let chosen: Vec<&Scenario> = if smoke {
        // The CI gate: one depot crash, one link flap.
        SCENARIOS.iter().take(2).collect()
    } else {
        SCENARIOS.iter().collect()
    };

    let mut failures = 0u32;
    println!(
        "{:<16} {:>5} {:<10} {:>5} {:>7} {:>9}",
        "scenario", "seed", "state", "route", "events", "dur_s"
    );
    for sc in &chosen {
        for seed in 0..seeds {
            let r = (sc.run)(seed);
            println!(
                "{:<16} {:>5} {:<10} {:>5} {:>7} {:>9.3}",
                sc.name,
                seed,
                format!("{:?}", r.state),
                r.route_used,
                r.timeline.len(),
                r.duration_s,
            );
            for (t, ev) in &r.timeline {
                println!("    {t:?} {ev:?}");
            }
            if seed == 0 && !smoke {
                let rows: Vec<(f64, String)> = r
                    .timeline
                    .iter()
                    .map(|(t, ev)| (t.as_secs_f64(), format!("{ev:?}")))
                    .collect();
                if let Err(e) = write_timeline_dat("results", &format!("faults_{}", sc.name), &rows)
                {
                    eprintln!("warning: could not write timeline .dat: {e}");
                }
            }
            if let Err(why) = (sc.expect)(&r) {
                eprintln!("FAIL {} seed {seed}: {why}", sc.name);
                eprintln!("{}", r.fingerprint());
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("faults: {failures} scenario run(s) failed");
        std::process::exit(1);
    }
    println!(
        "faults: {} scenario run(s) ok{}",
        chosen.len() as u64 * seeds,
        if smoke { " (smoke)" } else { "" }
    );
}
