//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run -p lsl-bench --release --bin ablations -- all
//! cargo run -p lsl-bench --release --bin ablations -- buffer loss rtt-split endhost algo delack
//! cargo run -p lsl-bench --release --bin ablations -- all --jobs 8
//! ```
//!
//! Iterations fan across worker threads (`--jobs N` / `LSL_JOBS`,
//! default: all cores); reported means are bitwise-identical at any
//! job count because samples are re-assembled in seed order.

use lsl_netsim::{Dur, LinkSpec, LossModel, Topology, TopologyBuilder};
use lsl_tcp::{CcAlgo, TcpConfig};
use lsl_workloads::{case1, default_jobs, run_campaign, run_transfer, Mode, PathCase, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = default_jobs();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = it
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--jobs requires a positive integer");
                    std::process::exit(2);
                });
        } else {
            wanted.push(a);
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: ablations <buffer|loss|rtt-split|endhost|algo|delack|all>... [--jobs N]");
        std::process::exit(2);
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = ["buffer", "loss", "rtt-split", "endhost", "algo", "delack"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    for w in wanted {
        match w.as_str() {
            "buffer" => ablate_relay_buffer(jobs),
            "loss" => ablate_loss_rate(jobs),
            "rtt-split" => ablate_rtt_split(jobs),
            "endhost" => ablate_endhost_buffers(jobs),
            "algo" => ablate_cc_algo(jobs),
            "delack" => ablate_delack(jobs),
            other => eprintln!("unknown ablation {other:?}"),
        }
    }
}

const ITERS: u64 = 3;

/// Mean goodput over a batch of configs, fanned across `jobs` workers;
/// samples fold in config order, so the mean is independent of `jobs`.
fn mean_goodput_case(case: &PathCase, cfgs: Vec<RunConfig>, jobs: usize) -> f64 {
    let n = cfgs.len();
    let samples = run_campaign(n, jobs, |i| run_transfer(case, &cfgs[i]).goodput_bps);
    samples.iter().sum::<f64>() / n as f64
}

fn mean_goodput(cfgs: impl Iterator<Item = RunConfig>, jobs: usize) -> f64 {
    mean_goodput_case(&case1(), cfgs.collect(), jobs)
}

/// Depot relay buffer: too small throttles pipelining; large buys little.
fn ablate_relay_buffer(jobs: usize) {
    println!("Ablation: depot relay buffer size (8MB via depot, case 1)");
    println!("{:>12} {:>14}", "buffer", "Mbit/s");
    for buf in [16usize << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20] {
        let g = mean_goodput(
            (0..ITERS).map(|i| {
                let mut c = RunConfig::builder(8 << 20, Mode::ViaDepot)
                    .seed(700 + i)
                    .build();
                c.relay_buf = buf;
                c
            }),
            jobs,
        );
        println!("{:>11}K {:>14.2}", buf >> 10, g / 1e6);
    }
    println!();
}

/// Loss-rate sweep on a parametric split path: locates the direct-vs-LSL
/// crossover as a function of p.
fn ablate_loss_rate(jobs: usize) {
    println!("Ablation: per-leg loss rate vs LSL gain (8MB, 2x30ms path)");
    println!(
        "{:>12} {:>14} {:>14} {:>8}",
        "p per leg", "direct Mb/s", "LSL Mb/s", "gain"
    );
    for p in [0.0, 1e-5, 5e-5, 2e-4, 1e-3] {
        let (topo, names) = split_path(p, Dur::from_millis(15), Dur::from_millis(15));
        let case = parametric_case(topo, names);
        let mean = |mode| -> f64 {
            let cfgs = (0..ITERS)
                .map(|i| RunConfig::builder(8 << 20, mode).seed(800 + i).build())
                .collect();
            mean_goodput_case(&case, cfgs, jobs)
        };
        let d = mean(Mode::Direct);
        let l = mean(Mode::ViaDepot);
        println!(
            "{:>12.0e} {:>14.2} {:>14.2} {:>+7.1}%",
            p,
            d / 1e6,
            l / 1e6,
            (l / d - 1.0) * 100.0
        );
    }
    println!("(gain grows with loss: recovery clocked by sublink RTT)\n");
}

/// RTT split asymmetry: an even split maximizes the gain.
fn ablate_rtt_split(jobs: usize) {
    println!("Ablation: RTT split asymmetry (8MB, 60ms total, p=2e-4/leg)");
    println!("{:>16} {:>14} {:>8}", "split (ms/ms)", "LSL Mb/s", "gain");
    let mut direct: Option<f64> = None;
    for (a, b) in [(30u64, 30u64), (20, 40), (10, 50), (5, 55)] {
        let (topo, names) = split_path(2e-4, Dur::from_millis(a), Dur::from_millis(b));
        let case = parametric_case(topo, names);
        let mean = |mode| -> f64 {
            let cfgs = (0..ITERS)
                .map(|i| RunConfig::builder(8 << 20, mode).seed(900 + i).build())
                .collect();
            mean_goodput_case(&case, cfgs, jobs)
        };
        // Direct only depends on the total RTT, so one baseline serves
        // every split.
        let direct = *direct.get_or_insert_with(|| {
            let d = mean(Mode::Direct);
            println!("{:>16} {:>14.2} {:>8}", "direct", d / 1e6, "—");
            d
        });
        let l = mean(Mode::ViaDepot);
        println!(
            "{:>13}/{:<3}{:>13.2} {:>+7.1}%",
            a,
            b,
            l / 1e6,
            (l / direct - 1.0) * 100.0
        );
    }
    println!("(the slowest sublink gates the cascade: even splits win)\n");
}

/// Limited end-host buffers: the paper notes the LSL improvement is more
/// profound with small end-node buffers (the depot re-opens the window
/// per hop).
fn ablate_endhost_buffers(jobs: usize) {
    println!("Ablation: end-host TCP buffers (8MB transfer, case 1)");
    println!(
        "{:>12} {:>14} {:>14} {:>8}",
        "buffers", "direct Mb/s", "LSL Mb/s", "gain"
    );
    for buf in [64u64 << 10, 256 << 10, 1 << 20, 8 << 20] {
        let mk = |mode| {
            (0..ITERS).map(move |i| {
                let mut c = RunConfig::builder(8 << 20, mode).seed(1000 + i).build();
                c.tcp = TcpConfig {
                    time_wait: Dur::from_millis(1),
                    ..TcpConfig::default().small_buffers(buf)
                };
                c
            })
        };
        let d = mean_goodput(mk(Mode::Direct), jobs);
        let l = mean_goodput(mk(Mode::ViaDepot), jobs);
        println!(
            "{:>11}K {:>14.2} {:>14.2} {:>+7.1}%",
            buf >> 10,
            d / 1e6,
            l / 1e6,
            (l / d - 1.0) * 100.0
        );
    }
    println!("(window-bound paths gain most: BW = wnd/RTT per sublink)\n");
}

/// Reno vs NewReno on both modes.
fn ablate_cc_algo(jobs: usize) {
    println!("Ablation: congestion-control variant (8MB, case 1)");
    println!("{:>10} {:>14} {:>14}", "algo", "direct Mb/s", "LSL Mb/s");
    for algo in [CcAlgo::Reno, CcAlgo::NewReno] {
        let mk = |mode| {
            (0..ITERS).map(move |i| {
                let mut c = RunConfig::builder(8 << 20, mode).seed(1100 + i).build();
                c.tcp.algo = algo;
                c
            })
        };
        let d = mean_goodput(mk(Mode::Direct), jobs);
        let l = mean_goodput(mk(Mode::ViaDepot), jobs);
        println!("{:>10?} {:>14.2} {:>14.2}", algo, d / 1e6, l / 1e6);
    }
    println!();
}

/// Delayed ACKs on/off.
fn ablate_delack(jobs: usize) {
    println!("Ablation: delayed ACKs (8MB, case 1)");
    println!("{:>10} {:>14} {:>14}", "delack", "direct Mb/s", "LSL Mb/s");
    for (name, d_opt) in [("on", Some(Dur::from_millis(100))), ("off", None)] {
        let mk = |mode| {
            (0..ITERS).map(move |i| {
                let mut c = RunConfig::builder(8 << 20, mode).seed(1200 + i).build();
                c.tcp.delack = d_opt;
                c
            })
        };
        let d = mean_goodput(mk(Mode::Direct), jobs);
        let l = mean_goodput(mk(Mode::ViaDepot), jobs);
        println!("{:>10} {:>14.2} {:>14.2}", name, d / 1e6, l / 1e6);
    }
    println!();
}

// ---------------------------------------------------------------------

/// src —(a)— pop —(b)— dst with a depot at the pop; loss p per leg.
fn split_path(p: f64, a: Dur, b: Dur) -> (Topology, [&'static str; 4]) {
    let mut tb = TopologyBuilder::new();
    let src = tb.node("src");
    let pop = tb.node("pop");
    let dst = tb.node("dst");
    let dep = tb.node("depot");
    tb.duplex(
        src,
        pop,
        LinkSpec::new(100_000_000, a).with_loss(LossModel::bernoulli(p)),
    );
    tb.duplex(
        pop,
        dst,
        LinkSpec::new(100_000_000, b).with_loss(LossModel::bernoulli(p)),
    );
    tb.duplex(
        pop,
        dep,
        LinkSpec::new(1_000_000_000, Dur::from_micros(100)),
    );
    (tb.build(), ["src", "pop", "dst", "depot"])
}

fn parametric_case(topo: Topology, names: [&'static str; 4]) -> PathCase {
    PathCase {
        name: "parametric-split",
        src: topo.find(names[0]).expect("src"),
        dst: topo.find(names[2]).expect("dst"),
        depot: topo.find(names[3]).expect("depot"),
        topo,
    }
}
