//! Forecast-vs-static routing campaign: every seed's storm runs twice —
//! once with PR-5's blind next-in-list recovery, once with the closed
//! NWS loop (probe → forecast → fixed-point score → proactive re-route)
//! — and the aggregate must show the forecast loop earning its keep.
//!
//! ```text
//! cargo run -p lsl-bench --release --bin routing                # 64 seeds
//! cargo run -p lsl-bench --release --bin routing -- --smoke     # CI gate: 8 seeds
//! cargo run -p lsl-bench --release --bin routing -- --seeds 128 --jobs 8
//! ```
//!
//! Checks, in order:
//!
//! 1. **Contract** — both modes of every seed satisfy the chaos-soak
//!    contract (terminate, verified delivery or typed error, no verified
//!    block re-sent, invariants clean).
//! 2. **Determinism** — the first seeds re-run at `--jobs 1` fingerprint
//!    byte-identically to the campaign's parallel run.
//! 3. **Forecast ≥ static** — the forecast arm completes at least as
//!    many transfers, and its mean completed duration is no worse than
//!    static's (5% tolerance: calm seeds run identically, stormy seeds
//!    are where the forecast wins).
//!
//! Exports `results/routing_outcomes.dat`: per-seed durations for both
//! modes plus the forecast arm's proactive re-route count.

use lsl_trace::export::write_dat;
use lsl_workloads::{default_jobs, run_routing_campaign, RoutingConfig, RoutingPair};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seeds: usize = if smoke { 8 } else { 64 };
    let mut jobs = default_jobs();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse = |v: Option<&String>, what: &str| {
            v.and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("{what} requires a positive integer");
                    std::process::exit(2);
                })
        };
        if a == "--seeds" {
            seeds = parse(it.next(), "--seeds");
        } else if a == "--jobs" {
            jobs = parse(it.next(), "--jobs");
        }
    }

    let cfg = RoutingConfig::default();
    let pairs = run_routing_campaign(&cfg, seeds, jobs);

    println!(
        "{:>5} {:>5}  {:<22} {:>9}  {:<22} {:>9} {:>8} {:>7}",
        "seed", "atoms", "static", "dur_s", "forecast", "dur_s", "reroutes", "probes"
    );
    for p in &pairs {
        let s = &p.static_run;
        let f = &p.forecast_run;
        println!(
            "{:>5} {:>5}  {:<22} {:>9.3}  {:<22} {:>9.3} {:>8} {:>7}",
            s.seed,
            s.storm.atoms.len(),
            format!("{:?}", s.state),
            s.duration_s,
            format!("{:?}", f.state),
            f.duration_s,
            f.reroutes(),
            f.probes,
        );
    }

    // --- 1. Contract on every run of every seed -----------------------
    let failing: Vec<&RoutingPair> = pairs.iter().filter(|p| !p.ok()).collect();
    for p in &failing {
        for r in [&p.static_run, &p.forecast_run] {
            if !r.ok() {
                eprintln!("FAIL seed {} mode {:?}: {:?}", r.seed, r.mode, r.violations);
            }
        }
    }
    if !failing.is_empty() {
        eprintln!(
            "routing: {} of {seeds} seed(s) violated the contract",
            failing.len()
        );
        std::process::exit(1);
    }

    // --- 2. Fingerprint determinism across job counts ------------------
    // Re-run the head of the campaign sequentially; the fingerprints
    // must be byte-identical to what the parallel fan-out produced.
    let check = seeds.min(3);
    let sequential = run_routing_campaign(&cfg, check, 1);
    for (i, (par, seq)) in pairs.iter().zip(&sequential).enumerate() {
        if par.fingerprint() != seq.fingerprint() {
            eprintln!("routing: seed {i} fingerprint differs between --jobs {jobs} and --jobs 1");
            std::process::exit(1);
        }
    }

    // --- 3. Forecast >= static ----------------------------------------
    let s_done = pairs.iter().filter(|p| p.static_run.completed()).count();
    let f_done = pairs.iter().filter(|p| p.forecast_run.completed()).count();
    let both: Vec<&RoutingPair> = pairs
        .iter()
        .filter(|p| p.static_run.completed() && p.forecast_run.completed())
        .collect();
    let mean = |sel: fn(&RoutingPair) -> f64| -> f64 {
        both.iter().map(|p| sel(p)).sum::<f64>() / both.len().max(1) as f64
    };
    let s_mean = mean(|p| p.static_run.duration_s);
    let f_mean = mean(|p| p.forecast_run.duration_s);
    let reroutes: usize = pairs.iter().map(|p| p.forecast_run.reroutes()).sum();
    println!(
        "routing: completed static {s_done}/{seeds} forecast {f_done}/{seeds}; \
         mean duration (both-completed, n={}) static {s_mean:.3}s forecast {f_mean:.3}s; \
         {reroutes} proactive reroute(s)",
        both.len()
    );
    if f_done < s_done {
        eprintln!("routing: forecast completed fewer transfers than static ({f_done} < {s_done})");
        std::process::exit(1);
    }
    if !both.is_empty() && f_mean > s_mean * 1.05 {
        eprintln!(
            "routing: forecast mean duration {f_mean:.3}s worse than static {s_mean:.3}s + 5%"
        );
        std::process::exit(1);
    }

    // --- Export --------------------------------------------------------
    let s_dur: Vec<(f64, f64)> = pairs
        .iter()
        .map(|p| (p.static_run.seed as f64, p.static_run.duration_s))
        .collect();
    let f_dur: Vec<(f64, f64)> = pairs
        .iter()
        .map(|p| (p.forecast_run.seed as f64, p.forecast_run.duration_s))
        .collect();
    let rr: Vec<(f64, f64)> = pairs
        .iter()
        .map(|p| (p.forecast_run.seed as f64, p.forecast_run.reroutes() as f64))
        .collect();
    if let Err(e) = write_dat(
        "results",
        "routing_outcomes",
        &[
            ("static_duration_s", &s_dur),
            ("forecast_duration_s", &f_dur),
            ("forecast_reroutes", &rr),
        ],
    ) {
        eprintln!("warning: could not write routing_outcomes.dat: {e}");
    }

    println!(
        "routing: {seeds} seed(s) ok{}",
        if smoke { " (smoke)" } else { "" }
    );
}
