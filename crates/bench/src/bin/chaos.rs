//! Chaos-storm soak driver: fan seeded random fault storms across the
//! failover topology, check the per-run contract, and shrink any
//! failure to a minimal reproducing drill.
//!
//! ```text
//! cargo run -p lsl-bench --release --bin chaos                  # 64 seeds
//! cargo run -p lsl-bench --release --bin chaos -- --smoke       # CI gate: 8 seeds
//! cargo run -p lsl-bench --release --bin chaos -- --seeds 256 --jobs 8
//! ```
//!
//! Per seed: one summary row (terminal state, route, storm atoms, fault
//! kinds, resume offset, duration). Exports `results/chaos_outcomes.dat`
//! (per-seed duration + resume curves) and `results/chaos_timeline.dat`
//! (the recovery timeline of the first storm that resumed). A contract
//! violation shrinks the storm to a 1-minimal atom subset and prints it
//! as a paste-able `FaultPlan` drill, then exits non-zero.

use lsl_obs::export::{write_chrome_trace, write_metrics_txt};
use lsl_obs::report::flight_recorder;
use lsl_session::SessionEvent;
use lsl_trace::export::{write_dat, write_timeline_dat};
use lsl_workloads::{default_jobs, run_chaos_campaign, shrink_chaos_run, ChaosConfig, ChaosRun};

fn resumed_offset(r: &ChaosRun) -> Option<u64> {
    r.timeline.iter().find_map(|(_, e)| match e {
        SessionEvent::Resumed { offset, .. } => Some(*offset),
        _ => None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seeds: usize = if smoke { 8 } else { 64 };
    let mut jobs = default_jobs();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse = |v: Option<&String>, what: &str| {
            v.and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("{what} requires a positive integer");
                    std::process::exit(2);
                })
        };
        if a == "--seeds" {
            seeds = parse(it.next(), "--seeds");
        } else if a == "--jobs" {
            jobs = parse(it.next(), "--jobs");
        }
    }

    let cfg = ChaosConfig::default();
    let runs = run_chaos_campaign(&cfg, seeds, jobs);

    println!(
        "{:>5} {:<28} {:>5} {:>5} {:>10} {:>9}  kinds",
        "seed", "state", "route", "atoms", "resume_at", "dur_s"
    );
    let mut kinds_seen = std::collections::BTreeSet::new();
    for r in &runs {
        kinds_seen.extend(r.kinds());
        println!(
            "{:>5} {:<28} {:>5} {:>5} {:>10} {:>9.3}  {}",
            r.seed,
            format!("{:?}", r.state),
            r.route_used,
            r.storm.atoms.len(),
            resumed_offset(r).map_or("-".into(), |o| o.to_string()),
            r.duration_s,
            r.kinds().into_iter().collect::<Vec<_>>().join(","),
        );
    }

    // Per-seed outcome curves: duration, and resume offset where a
    // resume happened (0 elsewhere keeps the curve dense).
    let dur: Vec<(f64, f64)> = runs.iter().map(|r| (r.seed as f64, r.duration_s)).collect();
    let resume: Vec<(f64, f64)> = runs
        .iter()
        .map(|r| (r.seed as f64, resumed_offset(r).unwrap_or(0) as f64))
        .collect();
    if let Err(e) = write_dat(
        "results",
        "chaos_outcomes",
        &[("duration_s", &dur), ("resume_offset", &resume)],
    ) {
        eprintln!("warning: could not write chaos_outcomes.dat: {e}");
    }
    if let Some(r) = runs.iter().find(|r| resumed_offset(r).is_some()) {
        let rows: Vec<(f64, String)> = r
            .timeline
            .iter()
            .map(|(t, ev)| (t.as_secs_f64(), format!("{ev:?}")))
            .collect();
        if let Err(e) = write_timeline_dat("results", "chaos_timeline", &rows) {
            eprintln!("warning: could not write chaos_timeline.dat: {e}");
        }
    }

    let failing: Vec<&ChaosRun> = runs.iter().filter(|r| !r.ok()).collect();
    for r in &failing {
        eprintln!("\nFAIL seed {}: {:?}", r.seed, r.violations);
        // Ship the failing seed's telemetry: a perfetto-loadable
        // timeline plus the flight-recorder summary next to it.
        let label = format!("chaos seed {}", r.seed);
        let stem = format!("chaos_fail_seed{}", r.seed);
        match write_chrome_trace("results/obs", &stem, &[(label.clone(), &r.obs)]) {
            Ok(p) => eprintln!("perfetto timeline: {}", p.display()),
            Err(e) => eprintln!("warning: could not write {stem}.trace.json: {e}"),
        }
        if let Err(e) = write_metrics_txt("results/obs", &stem, &r.obs) {
            eprintln!("warning: could not write {stem}.metrics.txt: {e}");
        }
        let summary = flight_recorder(&label, &r.obs);
        let summary_path = std::path::Path::new("results/obs").join(format!("{stem}.flight.txt"));
        if let Err(e) = std::fs::write(&summary_path, &summary) {
            eprintln!("warning: could not write {}: {e}", summary_path.display());
        } else {
            eprintln!("flight recorder: {}", summary_path.display());
        }
        eprint!("{summary}");
        eprintln!("shrinking storm ({} atoms)...", r.storm.atoms.len());
        let minimal = shrink_chaos_run(&cfg, r);
        eprintln!(
            "minimal reproduction ({} of {} atoms) — paste as a drill:\n{}",
            minimal.atoms.len(),
            r.storm.atoms.len(),
            minimal.drill()
        );
    }
    if !failing.is_empty() {
        eprintln!(
            "chaos: {} of {seeds} seed(s) violated the contract",
            failing.len()
        );
        std::process::exit(1);
    }
    println!(
        "chaos: {seeds} seed(s) ok{}, fault kinds covered: {}",
        if smoke { " (smoke)" } else { "" },
        kinds_seen.into_iter().collect::<Vec<_>>().join(","),
    );
}
