//! Striped-session soak driver: fan seeded fault storms — each with a
//! guaranteed targeted mid-transfer depot kill — across the three-depot
//! striping topology, check the striped contract per run, and gate the
//! striped-vs-single throughput claim.
//!
//! ```text
//! cargo run -p lsl-bench --release --bin striped                  # 64 seeds
//! cargo run -p lsl-bench --release --bin striped -- --smoke       # CI gate: 8 seeds
//! cargo run -p lsl-bench --release --bin striped -- --seeds 256 --jobs 8
//! ```
//!
//! Per seed: one summary row (terminal state, cascades, dead lanes,
//! stolen/redundant blocks, ledger verdict, the zero-verified-resend
//! counter). Exports `results/striped_outcomes.dat` (per-seed duration,
//! certified blocks, stolen blocks, regrants). A contract violation
//! shrinks the storm to a 1-minimal atom subset, ships the seed's
//! telemetry, and exits non-zero. The run ends with the RAIL claim
//! itself: the same calm seed striped and degraded to one cascade —
//! striped must not be slower.

use lsl_obs::export::{write_chrome_trace, write_metrics_txt};
use lsl_obs::report::flight_recorder;
use lsl_trace::export::write_dat;
use lsl_workloads::{
    default_jobs, run_striped_campaign, shrink_striped_run, striped_vs_single, StripedChaosConfig,
    StripedRun,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seeds: usize = if smoke { 8 } else { 64 };
    let mut jobs = default_jobs();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse = |v: Option<&String>, what: &str| {
            v.and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("{what} requires a positive integer");
                    std::process::exit(2);
                })
        };
        if a == "--seeds" {
            seeds = parse(it.next(), "--seeds");
        } else if a == "--jobs" {
            jobs = parse(it.next(), "--jobs");
        }
    }

    let cfg = StripedChaosConfig::default();
    let runs = run_striped_campaign(&cfg, seeds, jobs);

    println!(
        "{:>5} {:<28} {:>4} {:>4} {:>6} {:>6} {:>9} {:>8} {:>9}",
        "seed", "state", "casc", "dead", "stolen", "redun", "certified", "regrant", "dur_s"
    );
    for r in &runs {
        println!(
            "{:>5} {:<28} {:>4} {:>4} {:>6} {:>6} {:>4}/{:<4} {:>8} {:>9.3}",
            r.seed,
            format!("{:?}", r.state),
            r.cascades,
            r.lanes.iter().filter(|l| l.dead).count(),
            r.lanes.iter().map(|l| l.blocks_stolen).sum::<u64>(),
            r.lanes.iter().map(|l| l.redundant_attempts).sum::<u64>(),
            r.certified,
            r.expected_blocks,
            r.regrants,
            r.duration_s,
        );
    }

    // Per-seed outcome curves for the plotting pipeline.
    let curve = |f: fn(&StripedRun) -> f64| -> Vec<(f64, f64)> {
        runs.iter().map(|r| (r.seed as f64, f(r))).collect()
    };
    let dur = curve(|r| r.duration_s);
    let certified = curve(|r| r.certified as f64);
    let stolen = curve(|r| r.lanes.iter().map(|l| l.blocks_stolen).sum::<u64>() as f64);
    let regrants = curve(|r| r.regrants as f64);
    if let Err(e) = write_dat(
        "results",
        "striped_outcomes",
        &[
            ("duration_s", &dur),
            ("certified_blocks", &certified),
            ("stolen_blocks", &stolen),
            ("regrants", &regrants),
        ],
    ) {
        eprintln!("warning: could not write striped_outcomes.dat: {e}");
    }

    let failing: Vec<&StripedRun> = runs.iter().filter(|r| !r.ok()).collect();
    for r in &failing {
        eprintln!("\nFAIL seed {}: {:?}", r.seed, r.violations);
        let label = format!("striped seed {}", r.seed);
        let stem = format!("striped_fail_seed{}", r.seed);
        match write_chrome_trace("results/obs", &stem, &[(label.clone(), &r.obs)]) {
            Ok(p) => eprintln!("perfetto timeline: {}", p.display()),
            Err(e) => eprintln!("warning: could not write {stem}.trace.json: {e}"),
        }
        if let Err(e) = write_metrics_txt("results/obs", &stem, &r.obs) {
            eprintln!("warning: could not write {stem}.metrics.txt: {e}");
        }
        eprint!("{}", flight_recorder(&label, &r.obs));
        eprintln!("shrinking storm ({} atoms)...", r.storm.atoms.len());
        let minimal = shrink_striped_run(&cfg, r);
        eprintln!(
            "minimal reproduction ({} of {} atoms) — paste as a drill:\n{}",
            minimal.atoms.len(),
            r.storm.atoms.len(),
            minimal.drill()
        );
    }
    if !failing.is_empty() {
        eprintln!(
            "striped: {} of {seeds} seed(s) violated the contract",
            failing.len()
        );
        std::process::exit(1);
    }

    // The RAIL claim: on the lossy-backbone topology, three concurrent
    // Mathis-limited cascades must aggregate at least the single
    // cascade's throughput. Calm seed, identical sim timing.
    let (striped, single) = striped_vs_single(&cfg, 11);
    let speedup = single.duration_s / striped.duration_s.max(1e-9);
    println!(
        "striped-vs-single: striped {:.3}s ({} cascades) vs single {:.3}s — speedup {speedup:.2}x",
        striped.duration_s, striped.cascades, single.duration_s
    );
    if !(striped.completed() && single.completed()) || striped.duration_s > single.duration_s {
        eprintln!("striped: striping lost to the single cascade");
        std::process::exit(1);
    }

    println!(
        "striped: {seeds} seed(s) ok{}, zero verified-block re-sends",
        if smoke { " (smoke)" } else { "" },
    );
}
