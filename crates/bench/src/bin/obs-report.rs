//! Flight-recorder summarizer and observability CI gate.
//!
//! ```text
//! cargo run -p lsl-bench --release --bin obs-report                # seed 1
//! cargo run -p lsl-bench --release --bin obs-report -- --seed 42   # that seed
//! cargo run -p lsl-bench --release --bin obs-report -- --smoke     # CI gate
//! ```
//!
//! Default mode replays one chaos seed with telemetry recording on,
//! prints the flight-recorder summary (recovery arms, resume offsets,
//! bytes resent, histograms) and exports the run under `results/obs/`:
//! a perfetto-loadable Chrome trace (`.trace.json`), the raw span log
//! (`.spans.jsonl`, `.spans.dat`) and the metrics snapshot
//! (`.metrics.txt`).
//!
//! `--smoke` is the CI gate:
//!
//! 1. **Determinism** — the same seed is replayed twice and the full
//!    telemetry rendering must be byte-identical.
//! 2. **Trace shape** — the exported Chrome trace must carry the
//!    schema version, parse line-by-line, and have nondecreasing `ts`
//!    within each pid ([`validate_chrome_trace`]).
//! 3. **Idle overhead** — the netsim event-rate scenario (obs compiled
//!    in, recording *off* — the default) must stay within 3% of the
//!    committed `BENCH_netsim.json` figure. Override the floor with
//!    `OBS_PERF_MIN_RATIO` (e.g. `0.90` on noisy machines); the check
//!    is skipped with a note when the committed artifact is missing or
//!    was itself a smoke run.

use std::hint::black_box;
use std::time::Instant;

use bytes::Bytes;
use lsl_netsim::{Dur, LinkSpec, LossModel, Packet, TopologyBuilder};
use lsl_obs::export::{
    chrome_trace_json, validate_chrome_trace, write_chrome_trace, write_metrics_txt,
    write_span_dat, write_span_jsonl,
};
use lsl_obs::report::flight_recorder;
use lsl_workloads::{run_chaos_seed, ChaosConfig, ChaosRun};

/// Mirror of the micro-benchmark's event-rate scenario: 1000 packets
/// through a lossy 2-hop path. Returns the number of events processed,
/// so the caller can turn wall time into events/sec comparable with
/// `BENCH_netsim.json`'s `netsim_events_per_sec`.
fn event_rate_scenario() -> u64 {
    let mut tb = TopologyBuilder::new();
    let a = tb.node("a");
    let r = tb.node("r");
    let z = tb.node("z");
    tb.duplex(a, r, LinkSpec::new(1_000_000_000, Dur::from_micros(100)));
    tb.duplex(
        r,
        z,
        LinkSpec::new(1_000_000_000, Dur::from_micros(100)).with_loss(LossModel::bernoulli(0.01)),
    );
    let mut sim = tb.build().into_sim(1);
    for _ in 0..1000 {
        sim.send(
            a,
            Packet::tcp(a, z, Bytes::new(), Bytes::from_static(&[0u8; 1000])),
        );
    }
    let mut n = 0u64;
    while sim.next().is_some() {
        n += 1;
    }
    n
}

/// Median-of-3 events/sec with recording idle (the gate measures the
/// compiled-in-but-disabled cost every non-telemetry run pays).
fn measure_events_per_sec() -> f64 {
    assert!(!lsl_obs::is_enabled(), "perf gate must measure idle cost");
    let events = event_rate_scenario();
    // Warm-up, then three measured passes of a fixed iteration count.
    black_box(event_rate_scenario());
    let iters = 20u32;
    let mut passes = [0.0f64; 3];
    for p in &mut passes {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(event_rate_scenario());
        }
        *p = t0.elapsed().as_secs_f64() / iters as f64;
    }
    passes.sort_by(|a, b| a.total_cmp(b));
    events as f64 / passes[1]
}

/// Pull `"key": <number>` out of the hand-rolled bench JSON (offline
/// build: no serde, and the artifact is one key per line).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The committed bench artifact, if present: (events/sec, was-smoke).
fn committed_rate() -> Option<(f64, bool)> {
    let path = std::env::var_os("BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_netsim.json")
        });
    let json = std::fs::read_to_string(path).ok()?;
    let rate = json_number(&json, "netsim_events_per_sec")?;
    let smoke = json.contains("\"smoke\": true");
    Some((rate, smoke))
}

fn replay(seed: u64) -> ChaosRun {
    run_chaos_seed(
        &ChaosConfig {
            size: 256 * 1024,
            ..ChaosConfig::default()
        },
        seed,
    )
}

fn smoke(seed: u64) -> i32 {
    // 1. Determinism: same seed, byte-identical telemetry.
    let r1 = replay(seed);
    let r2 = replay(seed);
    if r1.obs.render() != r2.obs.render() {
        eprintln!("obs-report: FAIL — same-seed telemetry differs (seed {seed})");
        return 1;
    }
    println!(
        "obs-report: seed {seed} telemetry deterministic ({} span events, digest {:016x})",
        r1.obs.spans.len(),
        r1.obs.digest()
    );

    // 2. Trace shape: schema version, parseable events, monotone ts.
    let label = format!("chaos seed {seed}");
    let json = chrome_trace_json(&[(label, &r1.obs)]);
    match validate_chrome_trace(&json) {
        Ok(n) => println!("obs-report: chrome trace valid ({n} events)"),
        Err(e) => {
            eprintln!("obs-report: FAIL — invalid chrome trace: {e}");
            return 1;
        }
    }

    // 3. Idle overhead vs the committed bench figure.
    let min_ratio: f64 = std::env::var("OBS_PERF_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.97);
    match committed_rate() {
        None => println!("obs-report: no committed BENCH_netsim.json — perf check skipped"),
        Some((_, true)) => {
            println!("obs-report: committed bench is a smoke artifact — perf check skipped")
        }
        Some((committed, false)) => {
            let measured = measure_events_per_sec();
            let ratio = measured / committed;
            println!(
                "obs-report: netsim {measured:.0} events/sec vs committed {committed:.0} ({:.1}%)",
                ratio * 100.0
            );
            if ratio < min_ratio {
                eprintln!(
                    "obs-report: FAIL — idle-telemetry event rate regressed below {:.0}% of the committed figure",
                    min_ratio * 100.0
                );
                return 1;
            }
        }
    }
    println!("obs-report: smoke ok");
    0
}

fn summarize(seed: u64) -> i32 {
    let r = replay(seed);
    let label = format!("chaos seed {seed}");
    print!("{}", flight_recorder(&label, &r.obs));
    let stem = format!("chaos_seed{seed}");
    let runs = [(label, &r.obs)];
    for res in [
        write_chrome_trace("results/obs", &stem, &runs),
        write_span_jsonl("results/obs", &stem, &r.obs),
        write_span_dat("results/obs", &stem, &r.obs),
        write_metrics_txt("results/obs", &stem, &r.obs),
    ] {
        match res {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => {
                eprintln!("obs-report: could not write artifact: {e}");
                return 1;
            }
        }
    }
    if !r.ok() {
        eprintln!(
            "obs-report: note — seed {seed} violated the chaos contract: {:?}",
            r.violations
        );
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let is_smoke = args.iter().any(|a| a == "--smoke");
    let mut seed: u64 = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--seed requires an integer");
                std::process::exit(2);
            });
        } else if a != "--smoke" {
            eprintln!("unknown flag {a} (supported: --smoke, --seed N)");
            std::process::exit(2);
        }
    }
    let code = if is_smoke {
        smoke(seed)
    } else {
        summarize(seed)
    };
    std::process::exit(code);
}
