//! Regenerate every figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p lsl-bench --release --bin figures -- all          # smoke
//! cargo run -p lsl-bench --release --bin figures -- fig6 fig14
//! cargo run -p lsl-bench --release --bin figures -- all --paper  # full
//! cargo run -p lsl-bench --release --bin figures -- all --jobs 8
//! ```
//!
//! Output: `results/figNN.dat` (gnuplot index format) plus an ASCII
//! rendering per figure on stdout. Independent `(size, iteration)`
//! runs fan across worker threads (`--jobs N`, or the `LSL_JOBS` env
//! var, default: all cores); results are collected in seed order, so
//! the `.dat` output is byte-identical at any job count.

use std::path::PathBuf;

use lsl_bench::{
    averaged, first_series, loss_conditioned_indices, mean_rtt_ms, second_series, traced_runs,
    FigOpts, TracedRun,
};
use lsl_trace::export::{ascii_plot, write_dat};
use lsl_trace::Series;
use lsl_workloads::report::{gain_summary, human_size, sweep_table};
use lsl_workloads::sweep::sweep_sizes_jobs;
use lsl_workloads::{case1, case2, case3, case4, default_jobs, Mode, PathCase};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let mut jobs = default_jobs();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter().filter(|a| a != "--paper");
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = it
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--jobs requires a positive integer");
                    std::process::exit(2);
                });
        } else {
            wanted.push(a);
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: figures <figN ... | all> [--paper] [--jobs N]");
        eprintln!("figures: fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14");
        eprintln!("         fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25");
        eprintln!("         fig26 fig27 fig28 fig29 summary");
        std::process::exit(2);
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = (3..=29).map(|n| format!("fig{n}")).collect();
        wanted.push("summary".into());
    }
    let opts = FigOpts {
        paper,
        out_dir: PathBuf::from("results"),
        jobs,
    };
    println!(
        "mode: {} (use --paper for the full iteration counts), {jobs} jobs\n",
        if paper { "PAPER" } else { "smoke" }
    );
    for w in wanted {
        match w.as_str() {
            "fig3" => fig_rtt(
                &opts,
                &case1(),
                "fig03",
                "Fig 3: RTT, case 1 (UCSB→UIUC via Denver)",
            ),
            "fig4" => fig_rtt(
                &opts,
                &case2(),
                "fig04",
                "Fig 4: RTT, case 2 (UCSB→UF via Houston)",
            ),
            "fig5" => fig_bw_sweep(
                &opts,
                &case1(),
                &[32 << 10, 64 << 10, 128 << 10, 256 << 10],
                10,
                "fig05",
                "Fig 5: UCSB→UIUC bandwidth, 32K-256K",
            ),
            "fig6" => fig_bw_sweep(
                &opts,
                &case1(),
                &pow2_sizes(1 << 20, opts.size(64 << 20, 16 << 20)),
                10,
                "fig06",
                "Fig 6: UCSB→UIUC bandwidth, 1M-64M",
            ),
            "fig7" => fig_bw_sweep(
                &opts,
                &case2(),
                &[32 << 10, 64 << 10, 128 << 10, 256 << 10],
                10,
                "fig07",
                "Fig 7: UCSB→UF bandwidth, 32K-256K",
            ),
            "fig8" => fig_bw_sweep(
                &opts,
                &case2(),
                &pow2_sizes(1 << 20, opts.size(128 << 20, 16 << 20)),
                10,
                "fig08",
                "Fig 8: UCSB→UF bandwidth, 1M-128M",
            ),
            "fig9" => fig_rtt(
                &opts,
                &case3(),
                "fig09",
                "Fig 9: RTT, case 3 (UTK→UCSB wireless)",
            ),
            "fig10" => fig_bw_sweep(
                &opts,
                &case3(),
                &pow2_sizes(1 << 20, opts.size(256 << 20, 8 << 20)),
                10,
                "fig10",
                "Fig 10: UTK→UCSB (wireless) bandwidth, log-x",
            ),
            "fig11" => fig_individual_runs(
                &opts,
                Mode::Direct,
                SubSel::First,
                "fig11",
                "Fig 11: direct TCP seq growth, 64MB runs + average",
            ),
            "fig12" => fig_individual_runs(
                &opts,
                Mode::ViaDepot,
                SubSel::First,
                "fig12",
                "Fig 12: sublink 1 seq growth, 64MB runs + average",
            ),
            "fig13" => fig_individual_runs(
                &opts,
                Mode::ViaDepot,
                SubSel::Second,
                "fig13",
                "Fig 13: sublink 2 seq growth, 64MB runs + average",
            ),
            "fig14" => fig_avg_overlay(
                &opts,
                opts.size(64 << 20, 8 << 20),
                "fig14",
                "Fig 14: average seq growth, 64MB (sublinks vs direct)",
            ),
            "fig15" => fig_loss_conditioned(
                &opts,
                4 << 20,
                Cond::Min,
                "fig15",
                "Fig 15: 4MB, minimum-loss runs",
            ),
            "fig16" => fig_loss_conditioned(
                &opts,
                4 << 20,
                Cond::Median,
                "fig16",
                "Fig 16: 4MB, median-loss runs",
            ),
            "fig17" => fig_loss_conditioned(
                &opts,
                4 << 20,
                Cond::Max,
                "fig17",
                "Fig 17: 4MB, maximum-loss runs",
            ),
            "fig18" => fig_avg_overlay(&opts, 4 << 20, "fig18", "Fig 18: average seq growth, 4MB"),
            "fig19" => fig_loss_conditioned(
                &opts,
                16 << 20,
                Cond::Min,
                "fig19",
                "Fig 19: 16MB, minimum-loss runs",
            ),
            "fig20" => fig_loss_conditioned(
                &opts,
                16 << 20,
                Cond::Median,
                "fig20",
                "Fig 20: 16MB, median-loss runs",
            ),
            "fig21" => fig_loss_conditioned(
                &opts,
                16 << 20,
                Cond::Max,
                "fig21",
                "Fig 21: 16MB, maximum-loss runs",
            ),
            "fig22" => {
                fig_avg_overlay(&opts, 16 << 20, "fig22", "Fig 22: average seq growth, 16MB")
            }
            "fig23" => fig_loss_conditioned(
                &opts,
                opts.size(64 << 20, 16 << 20),
                Cond::Min,
                "fig23",
                "Fig 23: 64MB, minimum-loss runs",
            ),
            "fig24" => fig_loss_conditioned(
                &opts,
                opts.size(64 << 20, 16 << 20),
                Cond::Median,
                "fig24",
                "Fig 24: 64MB, median-loss runs",
            ),
            "fig25" => fig_loss_conditioned(
                &opts,
                opts.size(64 << 20, 16 << 20),
                Cond::Max,
                "fig25",
                "Fig 25: 64MB, maximum-loss runs",
            ),
            "fig26" => fig_avg_overlay_case(
                &opts,
                &case2(),
                opts.size(32 << 20, 8 << 20),
                "fig26",
                "Fig 26: average seq growth, 32MB UCSB→UF",
            ),
            "fig27" => fig_single_run_case3(&opts, "fig27", "Fig 27: seq growth, 256MB wireless"),
            "fig28" => fig_bw_sweep_iters(
                &opts,
                &case4(),
                &pow2_sizes(1 << 20, opts.size(512 << 20, 32 << 20)),
                opts.iters(120, 5),
                "fig28",
                "Fig 28: UCSB→OSU steady state, 1M-512M (log-x)",
            ),
            "fig29" => fig_bw_sweep_iters(
                &opts,
                &case4(),
                &[32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20],
                opts.iters(120, 10),
                "fig29",
                "Fig 29: UCSB→OSU, 32K-1024K",
            ),
            "summary" => headline_summary(&opts),
            other => {
                eprintln!("unknown figure {other:?}");
                std::process::exit(2);
            }
        }
    }
}

fn pow2_sizes(from: u64, to: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = from;
    while s <= to {
        v.push(s);
        s *= 2;
    }
    v
}

// ---------------------------------------------------------------------
// RTT bar figures (3, 4, 9)
// ---------------------------------------------------------------------

fn fig_rtt(opts: &FigOpts, case: &PathCase, stem: &str, title: &str) {
    let size = opts.size(16 << 20, 4 << 20);
    let iters = opts.iters(10, 3);
    let lsl = traced_runs(case, size, Mode::ViaDepot, iters, 1000, opts.jobs);
    let direct = traced_runs(case, size, Mode::Direct, iters, 1000, opts.jobs);

    let s1 = mean_rtt_ms(lsl.iter().map(|r| &r.first));
    let s2 = mean_rtt_ms(lsl.iter().filter_map(|r| r.second.as_ref()));
    let e2e = mean_rtt_ms(direct.iter().map(|r| &r.first));
    let sum = s1 + s2;

    println!("{title}");
    for (name, v) in [
        ("sublink1", s1),
        ("sublink2", s2),
        ("end-to-end", e2e),
        ("sum of sublinks", sum),
    ] {
        println!(
            "  {name:<16} {v:7.1} ms  {}",
            "#".repeat((v / 2.0) as usize)
        );
    }
    println!("  cascade RTT overhead vs direct: {:+.1} ms\n", sum - e2e);
    let bars = [
        ("sublink1", vec![(0.0, s1)]),
        ("sublink2", vec![(1.0, s2)]),
        ("end-to-end", vec![(2.0, e2e)]),
        ("sum-sublinks", vec![(3.0, sum)]),
    ];
    let curves: Vec<(&str, &[(f64, f64)])> = bars.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    write_dat(&opts.out_dir, stem, &curves).expect("write dat");
}

// ---------------------------------------------------------------------
// Bandwidth-vs-size figures (5-8, 10, 28, 29)
// ---------------------------------------------------------------------

fn fig_bw_sweep(
    opts: &FigOpts,
    case: &PathCase,
    sizes: &[u64],
    paper_iters: usize,
    stem: &str,
    title: &str,
) {
    fig_bw_sweep_iters(opts, case, sizes, opts.iters(paper_iters, 3), stem, title);
}

fn fig_bw_sweep_iters(
    opts: &FigOpts,
    case: &PathCase,
    sizes: &[u64],
    iters: usize,
    stem: &str,
    title: &str,
) {
    let direct = sweep_sizes_jobs(case, sizes, Mode::Direct, iters, 2000, opts.jobs);
    let lsl = sweep_sizes_jobs(case, sizes, Mode::ViaDepot, iters, 2000, opts.jobs);
    println!("{title}  ({iters} iterations/point)");
    print!("{}", sweep_table(&direct, &lsl));
    let (avg, max) = gain_summary(&direct, &lsl);
    println!("  LSL gain: {avg:+.1}% average, {max:+.1}% max\n");

    let d_pts: Vec<(f64, f64)> = direct
        .iter()
        .map(|p| (p.size as f64 / 1024.0, p.mean_bps / 1e6))
        .collect();
    let l_pts: Vec<(f64, f64)> = lsl
        .iter()
        .map(|p| (p.size as f64 / 1024.0, p.mean_bps / 1e6))
        .collect();
    println!(
        "{}",
        ascii_plot(
            &format!("{title} [x: KB, y: Mbit/s]"),
            &[("direct", &d_pts), ("LSL", &l_pts)],
        )
    );
    write_dat(
        &opts.out_dir,
        stem,
        &[("direct", d_pts.as_slice()), ("lsl", l_pts.as_slice())],
    )
    .expect("write dat");
}

// ---------------------------------------------------------------------
// Sequence-growth figures
// ---------------------------------------------------------------------

enum SubSel {
    First,
    Second,
}

/// Figs 11-13: all individual runs plus their average.
fn fig_individual_runs(opts: &FigOpts, mode: Mode, sel: SubSel, stem: &str, title: &str) {
    let case = case1();
    let size = opts.size(64 << 20, 8 << 20);
    let iters = opts.iters(11, 5);
    let runs = traced_runs(&case, size, mode, iters, 3000, opts.jobs);
    let series: Vec<Series> = match sel {
        SubSel::First => first_series(&runs),
        SubSel::Second => second_series(&runs),
    };
    let avg = averaged(&series, 200);

    println!("{title}  ({iters} runs of {})", human_size(size));
    let mut curves: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("test{i}"), s.points().to_vec()))
        .collect();
    curves.push(("average".to_string(), avg.points().to_vec()));
    let refs: Vec<(&str, &[(f64, f64)])> = curves
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_plot(
            &format!("{title} [x: s, y: bytes]"),
            &[
                ("runs", refs[0].1),
                ("average", refs.last().expect("nonempty").1)
            ],
        )
    );
    write_dat(&opts.out_dir, stem, &refs).expect("write dat");
}

/// Collect the three averaged curves (sublink1, sublink2, direct).
fn three_way_averages(opts: &FigOpts, case: &PathCase, size: u64) -> (Series, Series, Series) {
    let iters = opts.iters(11, 5);
    let lsl = traced_runs(case, size, Mode::ViaDepot, iters, 4000, opts.jobs);
    let direct = traced_runs(case, size, Mode::Direct, iters, 4000, opts.jobs);
    (
        averaged(&first_series(&lsl), 200),
        averaged(&second_series(&lsl), 200),
        averaged(&first_series(&direct), 200),
    )
}

/// Figs 14, 18, 22, 26: averaged sublink1/sublink2/direct overlay.
fn fig_avg_overlay(opts: &FigOpts, size: u64, stem: &str, title: &str) {
    fig_avg_overlay_case(opts, &case1(), size, stem, title);
}

fn fig_avg_overlay_case(opts: &FigOpts, case: &PathCase, size: u64, stem: &str, title: &str) {
    let (s1, s2, d) = three_way_averages(opts, case, size);
    emit_three_way(opts, stem, title, &s1, &s2, &d, size);
}

fn emit_three_way(
    opts: &FigOpts,
    stem: &str,
    title: &str,
    s1: &Series,
    s2: &Series,
    d: &Series,
    size: u64,
) {
    println!("{title} ({})", human_size(size));
    let curves = [
        ("sublink1", s1.points()),
        ("sublink2", s2.points()),
        ("direct", d.points()),
    ];
    println!(
        "{}",
        ascii_plot(&format!("{title} [x: s, y: bytes]"), &curves)
    );
    // Completion-time comparison (when each curve reaches the payload).
    let done = |s: &Series| s.last_t().unwrap_or(f64::NAN);
    println!(
        "  completion: sublink1 {:.2}s, sublink2 {:.2}s, direct {:.2}s\n",
        done(s1),
        done(s2),
        done(d)
    );
    write_dat(&opts.out_dir, stem, &curves).expect("write dat");
}

enum Cond {
    Min,
    Median,
    Max,
}

/// Figs 15-17, 19-21, 23-25: runs selected by observed retransmissions.
fn fig_loss_conditioned(opts: &FigOpts, size: u64, cond: Cond, stem: &str, title: &str) {
    let case = case1();
    let iters = opts.iters(11, 5);
    let lsl = traced_runs(&case, size, Mode::ViaDepot, iters, 5000, opts.jobs);
    let direct = traced_runs(&case, size, Mode::Direct, iters, 5000, opts.jobs);

    let pick = |runs: &[TracedRun]| -> usize {
        let (min_i, med_i, max_i) = loss_conditioned_indices(runs);
        match cond {
            Cond::Min => min_i,
            Cond::Median => med_i,
            Cond::Max => max_i,
        }
    };
    let li = pick(&lsl);
    let di = pick(&direct);
    let s1 = lsl_trace::seq_growth(&lsl[li].first);
    let s2 = lsl[li]
        .second
        .as_ref()
        .map(lsl_trace::seq_growth)
        .unwrap_or_default();
    let dd = lsl_trace::seq_growth(&direct[di].first);

    println!(
        "{title}: selected runs have {} (LSL) / {} (direct) retransmissions",
        lsl[li].retransmissions, direct[di].retransmissions
    );
    emit_three_way(opts, stem, title, &s1, &s2, &dd, size);
}

/// Fig 27: a single large wireless run.
fn fig_single_run_case3(opts: &FigOpts, stem: &str, title: &str) {
    let case = case3();
    let size = opts.size(256 << 20, 16 << 20);
    let lsl = traced_runs(&case, size, Mode::ViaDepot, 1, 6000, opts.jobs);
    let direct = traced_runs(&case, size, Mode::Direct, 1, 6000, opts.jobs);
    let s1 = lsl_trace::seq_growth(&lsl[0].first);
    let s2 = lsl[0]
        .second
        .as_ref()
        .map(lsl_trace::seq_growth)
        .unwrap_or_default();
    let d = lsl_trace::seq_growth(&direct[0].first);
    emit_three_way(opts, stem, title, &s1, &s2, &d, size);
}

// ---------------------------------------------------------------------
// Headline summary: the "+40% average, up to +75%" aggregate
// ---------------------------------------------------------------------

fn headline_summary(opts: &FigOpts) {
    println!("Headline aggregate across the bandwidth experiments:");
    let iters = opts.iters(10, 3);
    let mut all_gains = Vec::new();
    let settings: [(&str, PathCase, Vec<u64>); 3] = [
        (
            "case1 (UIUC)",
            case1(),
            pow2_sizes(1 << 20, opts.size(64 << 20, 8 << 20)),
        ),
        (
            "case2 (UF)",
            case2(),
            pow2_sizes(1 << 20, opts.size(64 << 20, 8 << 20)),
        ),
        (
            "case4 (OSU)",
            case4(),
            pow2_sizes(1 << 20, opts.size(64 << 20, 8 << 20)),
        ),
    ];
    for (name, case, sizes) in settings {
        let d = sweep_sizes_jobs(&case, &sizes, Mode::Direct, iters, 9000, opts.jobs);
        let l = sweep_sizes_jobs(&case, &sizes, Mode::ViaDepot, iters, 9000, opts.jobs);
        let (avg, max) = gain_summary(&d, &l);
        println!("  {name:<14} avg {avg:+6.1}%  max {max:+6.1}%");
        for (dp, lp) in d.iter().zip(&l) {
            all_gains.push((lp.mean_bps / dp.mean_bps - 1.0) * 100.0);
        }
    }
    let avg = all_gains.iter().sum::<f64>() / all_gains.len() as f64;
    let max = all_gains.iter().fold(f64::MIN, |a, &b| a.max(b));
    println!("  overall        avg {avg:+6.1}%  max {max:+6.1}%");
    println!("  (paper: +40% average, up to +75%)\n");
}
