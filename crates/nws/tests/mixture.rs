//! Integration/property tests: the adaptive mixture against synthetic
//! network-measurement processes.

use lsl_nws::{AdaptiveMixture, Forecaster, LastValue, MedianWindow, RunningMean, SlidingMean};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The mixture's postcast RMSE can never exceed the best individual
/// member's by construction (it *is* the best member's error).
#[test]
fn mixture_is_no_worse_than_best_member_on_noisy_series() {
    let mut rng = SmallRng::seed_from_u64(9);
    let series: Vec<f64> = (0..500)
        .map(|i| {
            let base = if i < 250 { 40.0 } else { 80.0 };
            base + rng.random_range(-5.0..5.0)
        })
        .collect();

    // Track errors of standalone members.
    let mut last = LastValue::default();
    let mut mean = RunningMean::default();
    let mut slide = SlidingMean::new(10);
    let mut median = MedianWindow::new(11);
    let mut mixture = AdaptiveMixture::standard();

    let mut errs = [0.0f64; 4];
    for &v in &series {
        for (i, p) in [
            last.predict(),
            mean.predict(),
            slide.predict(),
            median.predict(),
        ]
        .iter()
        .enumerate()
        {
            if let Some(p) = p {
                errs[i] += (p - v).powi(2);
            }
        }
        last.update(v);
        mean.update(v);
        slide.update(v);
        median.update(v);
        mixture.update(v);
    }
    let mixture_rmse = mixture.best_rmse().expect("enough samples");
    let best_standalone = errs
        .iter()
        .map(|e| (e / (series.len() - 1) as f64).sqrt())
        .fold(f64::MAX, f64::min);
    assert!(
        mixture_rmse <= best_standalone * 1.0001,
        "mixture {mixture_rmse} vs best member {best_standalone}"
    );
}

/// Regime-switch tracking: after a persistent level change, the mixture's
/// prediction moves to the new level within a bounded number of samples.
#[test]
fn mixture_adapts_to_regime_switch() {
    let mut m = AdaptiveMixture::standard();
    for _ in 0..100 {
        m.update(10.0);
    }
    for _ in 0..30 {
        m.update(200.0);
    }
    let p = m.predict().unwrap();
    assert!((p - 200.0).abs() < 40.0, "mixture stuck at old regime: {p}");
}

proptest! {
    /// On constant series every forecaster converges exactly; the
    /// mixture therefore predicts the constant.
    #[test]
    fn constant_series_predicted_exactly(v in 0.1f64..1e9, n in 3usize..100) {
        let mut m = AdaptiveMixture::standard();
        for _ in 0..n {
            m.update(v);
        }
        prop_assert!((m.predict().unwrap() - v).abs() < 1e-9);
    }

    /// Predictions always lie within the observed range for the
    /// interpolation-style members the standard panel uses.
    #[test]
    fn prediction_within_observed_range(
        vals in proptest::collection::vec(0.0f64..1e6, 2..200)
    ) {
        let mut m = AdaptiveMixture::standard();
        for &v in &vals {
            m.update(v);
        }
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        let p = m.predict().unwrap();
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Sample counting is exact.
    #[test]
    fn sample_count(n in 0usize..500) {
        let mut m = AdaptiveMixture::standard();
        for i in 0..n {
            m.update(i as f64);
        }
        prop_assert_eq!(m.samples(), n as u64);
    }
}
