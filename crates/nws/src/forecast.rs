//! Forecasting methods and the NWS adaptive mixture.
//!
//! Each [`Forecaster`] consumes measurements one at a time and predicts
//! the next value. [`AdaptiveMixture`] runs a panel of forecasters,
//! tracks each one's mean squared error *as a postcast* (comparing its
//! previous prediction against the measurement that then arrived), and
//! reports the prediction of the current lowest-error member — the
//! mechanism of Wolski's Network Weather Service.

use std::collections::VecDeque;

/// An online one-step-ahead predictor.
pub trait Forecaster {
    /// Incorporate a new measurement.
    fn update(&mut self, value: f64);
    /// Predict the next measurement; `None` until enough history exists.
    fn predict(&self) -> Option<f64>;
    /// Human-readable method name (for reports).
    fn name(&self) -> &'static str;
}

/// Predicts the last observed value.
#[derive(Clone, Debug, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl Forecaster for LastValue {
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Mean of all history.
#[derive(Clone, Debug, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl Forecaster for RunningMean {
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
    fn name(&self) -> &'static str {
        "running-mean"
    }
}

/// Mean over a sliding window of the `w` most recent measurements.
#[derive(Clone, Debug)]
pub struct SlidingMean {
    window: VecDeque<f64>,
    w: usize,
    sum: f64,
}

impl SlidingMean {
    pub fn new(w: usize) -> SlidingMean {
        assert!(w > 0);
        SlidingMean {
            window: VecDeque::with_capacity(w),
            w,
            sum: 0.0,
        }
    }
}

impl Forecaster for SlidingMean {
    fn update(&mut self, value: f64) {
        if self.window.len() == self.w {
            self.sum -= self.window.pop_front().expect("nonempty");
        }
        self.window.push_back(value);
        self.sum += value;
    }
    fn predict(&self) -> Option<f64> {
        (!self.window.is_empty()).then(|| self.sum / self.window.len() as f64)
    }
    fn name(&self) -> &'static str {
        "sliding-mean"
    }
}

/// Median over a sliding window — robust to outlier probes.
#[derive(Clone, Debug)]
pub struct MedianWindow {
    window: VecDeque<f64>,
    w: usize,
}

impl MedianWindow {
    pub fn new(w: usize) -> MedianWindow {
        assert!(w > 0);
        MedianWindow {
            window: VecDeque::with_capacity(w),
            w,
        }
    }
}

impl Forecaster for MedianWindow {
    fn update(&mut self, value: f64) {
        if self.window.len() == self.w {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let mid = v.len() / 2;
        Some(if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        })
    }
    fn name(&self) -> &'static str {
        "median-window"
    }
}

/// Exponential smoothing with gain `alpha`.
#[derive(Clone, Debug)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    pub fn new(alpha: f64) -> ExpSmoothing {
        assert!((0.0..=1.0).contains(&alpha));
        ExpSmoothing { alpha, state: None }
    }
}

impl Forecaster for ExpSmoothing {
    fn update(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => s + self.alpha * (value - s),
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &'static str {
        "exp-smoothing"
    }
}

/// The NWS adaptive mixture: per-member squared-error tracking and
/// winner-takes-the-forecast selection.
pub struct AdaptiveMixture {
    members: Vec<Box<dyn Forecaster + Send>>,
    /// Accumulated squared postcast error per member.
    sq_err: Vec<f64>,
    samples: u64,
}

impl AdaptiveMixture {
    /// The standard NWS-like panel.
    pub fn standard() -> AdaptiveMixture {
        AdaptiveMixture::new(vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(10)),
            Box::new(MedianWindow::new(11)),
            Box::new(ExpSmoothing::new(0.25)),
        ])
    }

    pub fn new(members: Vec<Box<dyn Forecaster + Send>>) -> AdaptiveMixture {
        assert!(!members.is_empty());
        let n = members.len();
        AdaptiveMixture {
            members,
            sq_err: vec![0.0; n],
            samples: 0,
        }
    }

    /// Incorporate a measurement: first score every member's outstanding
    /// prediction against it, then let everyone update.
    pub fn update(&mut self, value: f64) {
        for (i, m) in self.members.iter().enumerate() {
            if let Some(p) = m.predict() {
                let e = p - value;
                self.sq_err[i] += e * e;
            }
        }
        for m in &mut self.members {
            m.update(value);
        }
        self.samples += 1;
    }

    /// Index and name of the member currently trusted.
    pub fn best_member(&self) -> (usize, &'static str) {
        let mut best = 0;
        for i in 1..self.members.len() {
            if self.sq_err[i] < self.sq_err[best] {
                best = i;
            }
        }
        (best, self.members[best].name())
    }

    /// The mixture's prediction: the best member's forecast.
    pub fn predict(&self) -> Option<f64> {
        if self.samples == 0 {
            return None;
        }
        let (best, _) = self.best_member();
        self.members[best].predict()
    }

    /// Root-mean-square postcast error of the trusted member.
    pub fn best_rmse(&self) -> Option<f64> {
        if self.samples < 2 {
            return None;
        }
        let (best, _) = self.best_member();
        Some((self.sq_err[best] / (self.samples - 1) as f64).sqrt())
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed<F: Forecaster>(f: &mut F, vals: &[f64]) {
        for &v in vals {
            f.update(v);
        }
    }

    #[test]
    fn last_value_tracks() {
        let mut f = LastValue::default();
        assert_eq!(f.predict(), None);
        feed(&mut f, &[1.0, 2.0, 3.0]);
        assert_eq!(f.predict(), Some(3.0));
    }

    #[test]
    fn running_mean_averages_all() {
        let mut f = RunningMean::default();
        feed(&mut f, &[2.0, 4.0, 6.0]);
        assert_eq!(f.predict(), Some(4.0));
    }

    #[test]
    fn sliding_mean_forgets() {
        let mut f = SlidingMean::new(2);
        feed(&mut f, &[100.0, 1.0, 3.0]);
        assert_eq!(f.predict(), Some(2.0));
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let mut f = MedianWindow::new(5);
        feed(&mut f, &[10.0, 11.0, 9.0, 10.0, 1000.0]);
        assert_eq!(f.predict(), Some(10.0));
    }

    #[test]
    fn median_even_window_interpolates() {
        let mut f = MedianWindow::new(4);
        feed(&mut f, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn exp_smoothing_converges() {
        let mut f = ExpSmoothing::new(0.5);
        feed(&mut f, &[0.0; 1]);
        feed(&mut f, &[10.0; 20]);
        assert!((f.predict().unwrap() - 10.0).abs() < 0.01);
    }

    #[test]
    fn mixture_picks_last_value_on_step_change() {
        // A series with a persistent level shift: last-value adapts
        // immediately; running-mean lags badly. The mixture must learn to
        // trust last-value.
        let mut m = AdaptiveMixture::standard();
        for _ in 0..20 {
            m.update(10.0);
        }
        for _ in 0..40 {
            m.update(50.0);
        }
        let (_, name) = m.best_member();
        assert_ne!(name, "running-mean");
        let p = m.predict().unwrap();
        assert!((p - 50.0).abs() < 5.0, "prediction {p}");
    }

    #[test]
    fn mixture_prefers_smoothing_on_noise() {
        // Alternating ±noise around a constant: last-value has maximal
        // error; window means/medians do well.
        let mut m = AdaptiveMixture::standard();
        for i in 0..200 {
            let v = 100.0 + if i % 2 == 0 { 10.0 } else { -10.0 };
            m.update(v);
        }
        let (_, name) = m.best_member();
        assert_ne!(name, "last-value");
        let p = m.predict().unwrap();
        assert!((p - 100.0).abs() < 5.0, "prediction {p}");
    }

    #[test]
    fn mixture_empty_history_predicts_none() {
        let m = AdaptiveMixture::standard();
        assert_eq!(m.predict(), None);
        assert_eq!(m.best_rmse(), None);
    }

    #[test]
    fn mixture_rmse_reported() {
        let mut m = AdaptiveMixture::standard();
        for _ in 0..10 {
            m.update(5.0);
        }
        // Constant series: the best member's postcast error is ~0.
        assert!(m.best_rmse().unwrap() < 1e-9);
    }
}
