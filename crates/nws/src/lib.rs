//! A Network Weather Service (NWS)-style forecasting substrate.
//!
//! The paper assumes "LSL clients and depots ... have network performance
//! information available from a system such as the Network Weather
//! Service, in order to make decisions about paths" (§III, citing
//! Wolski's NWS). This crate reproduces the NWS forecasting core:
//! a family of simple time-series predictors run side by side, with an
//! adaptive *mixture* that, at each step, trusts the predictor whose past
//! forecasts have had the lowest error — the defining NWS design.
//!
//! [`registry::LinkRegistry`] stores measurement series per (src, dst)
//! pair and produces the per-sublink forecasts that feed
//! `lsl_session::path` ranking.

pub mod forecast;
pub mod registry;
pub mod series;

pub use forecast::{
    AdaptiveMixture, ExpSmoothing, Forecaster, LastValue, MedianWindow, RunningMean, SlidingMean,
};
pub use registry::{Confidence, LinkForecast, LinkMetrics, LinkRegistry};
pub use series::TimeSeries;
