//! Measurement series storage.

/// A bounded time series of measurements `(t_seconds, value)`.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    data: Vec<(f64, f64)>,
    cap: usize,
}

impl TimeSeries {
    /// A series retaining at most `cap` most-recent measurements.
    pub fn new(cap: usize) -> TimeSeries {
        assert!(cap > 0);
        TimeSeries {
            data: Vec::new(),
            cap,
        }
    }

    pub fn push(&mut self, t: f64, value: f64) {
        assert!(
            self.data.last().is_none_or(|&(lt, _)| t >= lt),
            "measurements must arrive in time order"
        );
        if self.data.len() == self.cap {
            self.data.remove(0);
        }
        self.data.push((t, value));
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn last(&self) -> Option<(f64, f64)> {
        self.data.last().copied()
    }

    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().map(|&(_, v)| v)
    }

    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.data.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new(10);
        assert!(s.is_empty());
        s.push(1.0, 5.0);
        s.push(2.0, 6.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((2.0, 6.0)));
        assert_eq!(s.values().collect::<Vec<_>>(), vec![5.0, 6.0]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = TimeSeries::new(3);
        for i in 0..5 {
            s.push(i as f64, i as f64 * 10.0);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.values().collect::<Vec<_>>(), vec![20.0, 30.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_rejected() {
        let mut s = TimeSeries::new(4);
        s.push(2.0, 1.0);
        s.push(1.0, 1.0);
    }
}
