//! Per-sublink measurement registry feeding path selection.
//!
//! The registry is deliberately transport-agnostic: experiment drivers
//! push (bandwidth, rtt, loss) observations per directed (src, dst) pair
//! — from NWS-style active probes or passively from TCP connection
//! statistics ("the TCP extended statistics MIB or the like", §III) —
//! and path selection reads the current forecasts back out.

use std::collections::BTreeMap;

use crate::forecast::AdaptiveMixture;

/// Forecast state for one directed sublink.
pub struct LinkMetrics {
    pub bandwidth_bps: AdaptiveMixture,
    pub rtt_s: AdaptiveMixture,
    pub loss: AdaptiveMixture,
}

impl Default for LinkMetrics {
    fn default() -> Self {
        LinkMetrics {
            bandwidth_bps: AdaptiveMixture::standard(),
            rtt_s: AdaptiveMixture::standard(),
            loss: AdaptiveMixture::standard(),
        }
    }
}

/// Forecast snapshot for one sublink.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkForecast {
    pub bandwidth_bps: Option<f64>,
    pub rtt_s: Option<f64>,
    pub loss: Option<f64>,
}

/// Registry of sublink metrics keyed by a caller-chosen endpoint id
/// (typically `lsl_netsim::NodeId.0`).
#[derive(Default)]
pub struct LinkRegistry {
    links: BTreeMap<(u32, u32), LinkMetrics>,
}

impl LinkRegistry {
    pub fn new() -> LinkRegistry {
        LinkRegistry::default()
    }

    fn entry(&mut self, src: u32, dst: u32) -> &mut LinkMetrics {
        self.links.entry((src, dst)).or_default()
    }

    /// Record a bandwidth observation (bits/s).
    pub fn observe_bandwidth(&mut self, src: u32, dst: u32, bps: f64) {
        self.entry(src, dst).bandwidth_bps.update(bps);
    }

    /// Record an RTT observation (seconds).
    pub fn observe_rtt(&mut self, src: u32, dst: u32, rtt_s: f64) {
        self.entry(src, dst).rtt_s.update(rtt_s);
    }

    /// Record a loss-rate observation (fraction).
    pub fn observe_loss(&mut self, src: u32, dst: u32, loss: f64) {
        self.entry(src, dst).loss.update(loss);
    }

    /// Current forecast for a sublink; fields are `None` until at least
    /// one observation of that metric exists.
    pub fn forecast(&self, src: u32, dst: u32) -> LinkForecast {
        match self.links.get(&(src, dst)) {
            None => LinkForecast {
                bandwidth_bps: None,
                rtt_s: None,
                loss: None,
            },
            Some(m) => LinkForecast {
                bandwidth_bps: m.bandwidth_bps.predict(),
                rtt_s: m.rtt_s.predict(),
                loss: m.loss.predict(),
            },
        }
    }

    /// Number of sublinks with any history.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_link_forecasts_none() {
        let r = LinkRegistry::new();
        let f = r.forecast(0, 1);
        assert_eq!(f.bandwidth_bps, None);
        assert_eq!(f.rtt_s, None);
        assert_eq!(f.loss, None);
    }

    #[test]
    fn observations_produce_forecasts() {
        let mut r = LinkRegistry::new();
        for _ in 0..5 {
            r.observe_bandwidth(0, 1, 10e6);
            r.observe_rtt(0, 1, 0.03);
            r.observe_loss(0, 1, 1e-4);
        }
        let f = r.forecast(0, 1);
        assert!((f.bandwidth_bps.unwrap() - 10e6).abs() < 1.0);
        assert!((f.rtt_s.unwrap() - 0.03).abs() < 1e-9);
        assert!((f.loss.unwrap() - 1e-4).abs() < 1e-9);
        // Direction matters.
        assert_eq!(r.forecast(1, 0).rtt_s, None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn forecasts_track_changing_conditions() {
        let mut r = LinkRegistry::new();
        for _ in 0..10 {
            r.observe_rtt(2, 3, 0.05);
        }
        for _ in 0..30 {
            r.observe_rtt(2, 3, 0.20);
        }
        let f = r.forecast(2, 3).rtt_s.unwrap();
        assert!((f - 0.20).abs() < 0.03, "forecast {f}");
    }
}
