//! Per-sublink measurement registry feeding path selection.
//!
//! The registry is deliberately transport-agnostic: experiment drivers
//! push (bandwidth, rtt, loss) observations per directed (src, dst) pair
//! — from NWS-style active probes or passively from TCP connection
//! statistics ("the TCP extended statistics MIB or the like", §III) —
//! and path selection reads the current forecasts back out.

use std::collections::BTreeMap;

use crate::forecast::AdaptiveMixture;

/// Samples of the sparsest observed metric needed before a forecast is
/// reported as [`Confidence::Seasoned`].
const SEASONED_SAMPLES: u64 = 8;

/// Forecast state for one directed sublink.
pub struct LinkMetrics {
    pub bandwidth_bps: AdaptiveMixture,
    pub rtt_s: AdaptiveMixture,
    pub loss: AdaptiveMixture,
    /// Accepted sample counts per metric (bandwidth, rtt, loss) —
    /// the basis of the forecast's typed [`Confidence`].
    pub samples: [u64; 3],
}

impl Default for LinkMetrics {
    fn default() -> Self {
        LinkMetrics {
            bandwidth_bps: AdaptiveMixture::standard(),
            rtt_s: AdaptiveMixture::standard(),
            loss: AdaptiveMixture::standard(),
            samples: [0; 3],
        }
    }
}

/// How much history stands behind a forecast. A consumer that would
/// commit real traffic to a route can demand [`Confidence::Seasoned`];
/// a `Provisional` forecast is better treated as a hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// The sparsest observed metric has only a few samples; the
    /// mixture's expert weights are still mostly priors.
    Provisional,
    /// Every observed metric has at least [`SEASONED_SAMPLES`] accepted
    /// samples.
    Seasoned,
}

/// Forecast snapshot for one sublink. Only handed out for pairs with at
/// least one accepted observation ([`LinkRegistry::forecast`] returns
/// `Option<LinkForecast>`); individual metrics stay `None` until their
/// first sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkForecast {
    pub bandwidth_bps: Option<f64>,
    pub rtt_s: Option<f64>,
    pub loss: Option<f64>,
    pub confidence: Confidence,
}

/// Registry of sublink metrics keyed by a caller-chosen endpoint id
/// (typically `lsl_netsim::NodeId.0`).
#[derive(Default)]
pub struct LinkRegistry {
    links: BTreeMap<(u32, u32), LinkMetrics>,
}

impl LinkRegistry {
    pub fn new() -> LinkRegistry {
        LinkRegistry::default()
    }

    fn entry(&mut self, src: u32, dst: u32) -> &mut LinkMetrics {
        self.links.entry((src, dst)).or_default()
    }

    /// Record a bandwidth observation (bits/s). Returns whether the
    /// sample was accepted: non-finite or negative samples are rejected
    /// before they can poison the mixture (every expert would propagate
    /// a NaN into all future predictions).
    pub fn observe_bandwidth(&mut self, src: u32, dst: u32, bps: f64) -> bool {
        if !bps.is_finite() || bps < 0.0 {
            return false;
        }
        let m = self.entry(src, dst);
        m.bandwidth_bps.update(bps);
        m.samples[0] += 1;
        true
    }

    /// Record an RTT observation (seconds); rejects non-finite or
    /// non-positive samples.
    pub fn observe_rtt(&mut self, src: u32, dst: u32, rtt_s: f64) -> bool {
        if !rtt_s.is_finite() || rtt_s <= 0.0 {
            return false;
        }
        let m = self.entry(src, dst);
        m.rtt_s.update(rtt_s);
        m.samples[1] += 1;
        true
    }

    /// Record a loss-rate observation (fraction); rejects non-finite
    /// samples and anything outside `[0, 1]`.
    pub fn observe_loss(&mut self, src: u32, dst: u32, loss: f64) -> bool {
        if !loss.is_finite() || !(0.0..=1.0).contains(&loss) {
            return false;
        }
        let m = self.entry(src, dst);
        m.loss.update(loss);
        m.samples[2] += 1;
        true
    }

    /// Current forecast for a sublink: `None` for a pair that has never
    /// produced an accepted observation (an honest "I know nothing",
    /// not a default-y struct); otherwise a snapshot whose per-metric
    /// fields are `None` until that metric's first sample, with a typed
    /// [`Confidence`] derived from the sparsest observed metric.
    pub fn forecast(&self, src: u32, dst: u32) -> Option<LinkForecast> {
        let m = self.links.get(&(src, dst))?;
        let observed_min = m
            .samples
            .iter()
            .copied()
            .filter(|&n| n > 0)
            .min()
            .unwrap_or(0);
        Some(LinkForecast {
            bandwidth_bps: m.bandwidth_bps.predict(),
            rtt_s: m.rtt_s.predict(),
            loss: m.loss.predict(),
            confidence: if observed_min >= SEASONED_SAMPLES {
                Confidence::Seasoned
            } else {
                Confidence::Provisional
            },
        })
    }

    /// Number of sublinks with any history.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_link_forecasts_none() {
        let r = LinkRegistry::new();
        // An honest miss, not a struct of Nones.
        assert_eq!(r.forecast(0, 1), None);
    }

    #[test]
    fn observations_produce_forecasts() {
        let mut r = LinkRegistry::new();
        for _ in 0..10 {
            assert!(r.observe_bandwidth(0, 1, 10e6));
            assert!(r.observe_rtt(0, 1, 0.03));
            assert!(r.observe_loss(0, 1, 1e-4));
        }
        let f = r.forecast(0, 1).unwrap();
        assert!((f.bandwidth_bps.unwrap() - 10e6).abs() < 1.0);
        assert!((f.rtt_s.unwrap() - 0.03).abs() < 1e-9);
        assert!((f.loss.unwrap() - 1e-4).abs() < 1e-9);
        assert_eq!(f.confidence, Confidence::Seasoned);
        // Direction matters.
        assert_eq!(r.forecast(1, 0), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn confidence_tracks_sparsest_observed_metric() {
        let mut r = LinkRegistry::new();
        for _ in 0..20 {
            r.observe_rtt(0, 1, 0.03);
        }
        // Only RTT observed, with plenty of history: seasoned.
        assert_eq!(r.forecast(0, 1).unwrap().confidence, Confidence::Seasoned);
        // One lone bandwidth sample drags the snapshot back down.
        r.observe_bandwidth(0, 1, 10e6);
        assert_eq!(
            r.forecast(0, 1).unwrap().confidence,
            Confidence::Provisional
        );
    }

    #[test]
    fn poison_samples_are_rejected() {
        let mut r = LinkRegistry::new();
        assert!(!r.observe_bandwidth(0, 1, f64::NAN));
        assert!(!r.observe_bandwidth(0, 1, f64::INFINITY));
        assert!(!r.observe_bandwidth(0, 1, -1.0));
        assert!(!r.observe_rtt(0, 1, f64::NAN));
        assert!(!r.observe_rtt(0, 1, 0.0));
        assert!(!r.observe_rtt(0, 1, -0.5));
        assert!(!r.observe_loss(0, 1, f64::NAN));
        assert!(!r.observe_loss(0, 1, 1.5));
        assert!(!r.observe_loss(0, 1, -0.1));
        // Nothing was accepted, so the pair still reads as unknown …
        assert_eq!(r.forecast(0, 1), None);
        assert!(r.is_empty());
        // … and a NaN cannot have poisoned later good samples.
        assert!(r.observe_rtt(0, 1, 0.05));
        let f = r.forecast(0, 1).unwrap();
        assert!((f.rtt_s.unwrap() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn forecasts_track_changing_conditions() {
        let mut r = LinkRegistry::new();
        for _ in 0..10 {
            r.observe_rtt(2, 3, 0.05);
        }
        for _ in 0..30 {
            r.observe_rtt(2, 3, 0.20);
        }
        let f = r.forecast(2, 3).unwrap().rtt_s.unwrap();
        assert!((f - 0.20).abs() < 0.03, "forecast {f}");
    }
}
